#include "archive/archive_service.h"

#include <algorithm>
#include <fstream>
#include <functional>
#include <memory>
#include <set>

#include "common/crc32.h"
#include "common/parallel.h"
#include "common/telemetry.h"
#include "simd/dispatch.h"
#include "storage/bch.h"

namespace videoapp {

namespace {

/** The record's precise layout: headers plus payload placement.
 * Payload bytes are zero-filled placeholders — only their sizes
 * matter to mergeStreams, and only the sizes are persisted — so the
 * in-memory record matches a reopened one byte for byte. */
EncodedVideo
layoutOf(const EncodedVideo &video)
{
    EncodedVideo layout;
    layout.header = video.header;
    layout.frameHeaders = video.frameHeaders;
    layout.payloads.reserve(video.payloads.size());
    for (const auto &p : video.payloads)
        layout.payloads.emplace_back(p.size(), 0);
    return layout;
}

} // namespace

VideoRecord
recordFromPrepared(const PreparedVideo &prepared,
                   const std::optional<EncryptionConfig> &encryption)
{
    VA_TELEM_LATENCY("archive.record_build");
    VideoRecord record;
    record.layout = layoutOf(prepared.enc.video);
    // The policy is computed once here and persisted with the
    // record; every later consumer (get-time decryption, the serving
    // layer's shedding, re-key passes) reads it back instead of
    // re-deriving treatment from a config.
    record.policy = policyFor(prepared.streams, encryption);

    std::unique_ptr<StreamCryptor> cryptor;
    if (encryption && record.policy->anyEncrypted()) {
        cryptor = std::make_unique<StreamCryptor>(
            encryption->mode, encryption->key, encryption->masterIv);
        record.crypto = cryptor->meta(encryption->keyId);
    }

    // One StreamRecord per reliability stream, ascending t (map
    // order). Encrypt + BCH-encode is pure per-stream work, so it
    // runs on the pool.
    struct StreamWork
    {
        int t = 0;
        const Bytes *data = nullptr;
        u64 bitLength = 0;
    };
    std::vector<StreamWork> work;
    work.reserve(prepared.streams.data.size());
    for (const auto &[t, data] : prepared.streams.data)
        work.push_back(
            {t, &data, prepared.streams.bitLength.at(t)});

    record.streams.resize(work.size());
    parallelFor(work.size(), [&](std::size_t i) {
        const StreamWork &w = work[i];
        StreamRecord &s = record.streams[i];
        s.schemeT = w.t;
        s.bitLength = w.bitLength;
        s.trueBytes = w.data->size();
        Bytes to_store = *w.data;
        const bool encrypted =
            cryptor != nullptr && record.policy->encrypts(w.t);
        if (encrypted)
            to_store = cryptor->encryptStream(
                static_cast<u32>(w.t), to_store);
        // Two call sites, not a ternary name: VA_TELEM_COUNT caches
        // the counter in a per-callsite static.
        if (cryptor != nullptr && encrypted)
            VA_TELEM_COUNT("archive.bytes_encrypted",
                           w.data->size());
        else if (cryptor != nullptr)
            VA_TELEM_COUNT("archive.bytes_plaintext",
                           w.data->size());
        s.image = exportCellImage(to_store, EccScheme{w.t});
        s.cellsCrc = crc32(s.image.cells);
    });
    VA_TELEM_COUNT("archive.streams_encoded", work.size());
    return record;
}

ArchiveService::ArchiveService(std::string path)
    : path_(std::move(path))
{}

std::mutex &
ArchiveService::shardFor(const std::string &name) const
{
    return shards_[std::hash<std::string>{}(name) % kLockShards];
}

ArchiveError
ArchiveService::open(bool create_if_missing)
{
    VA_TELEM_LATENCY("archive.open");
    std::unique_lock dir(dirMutex_);
    {
        std::ifstream probe(path_, std::ios::binary);
        if (!probe) {
            if (!create_if_missing)
                return ArchiveError::Io;
            archive_ = Archive{};
            return ArchiveError::None;
        }
    }
    Archive loaded;
    ArchiveError err = readArchive(path_, loaded);
    if (err != ArchiveError::None)
        return err;
    archive_ = std::move(loaded);
    metaCrc_.clear();
    for (const auto &[name, record] : archive_.videos)
        metaCrc_[name] = crc32(serializeRecordMeta(record));
    {
        // Held replica blobs live in replicaMeta_ while the service
        // runs; the archive's copy is only their durable image.
        std::lock_guard replicas(replicaMutex_);
        replicaMeta_ = std::move(archive_.replicas);
        archive_.replicas.clear();
    }
    VA_TELEM_COUNT("archive.opens", 1);
    return ArchiveError::None;
}

ArchiveError
ArchiveService::flush()
{
    VA_TELEM_LATENCY("archive.flush");
    // Exclusive directory lock: every cells reader/writer holds at
    // least a shared directory lock, so this alone quiesces the
    // archive for a consistent snapshot.
    std::unique_lock dir(dirMutex_);
    {
        // Same dir -> replica lock order as remove().
        std::lock_guard replicas(replicaMutex_);
        archive_.replicas = replicaMeta_;
    }
    ArchiveError err = writeArchive(archive_, path_);
    if (err == ArchiveError::None)
        VA_TELEM_COUNT("archive.flushes", 1);
    return err;
}

ArchiveError
ArchiveService::put(const std::string &name,
                    const PreparedVideo &prepared,
                    const ArchivePutOptions &options)
{
    VA_TELEM_LATENCY("archive.put");
    // Heavy work (encrypt + BCH encode) happens outside any lock;
    // only the map insert needs the directory writer lock.
    VideoRecord record = recordFromPrepared(prepared, options.encryption);
    u32 meta_crc = crc32(serializeRecordMeta(record));

    std::unique_lock dir(dirMutex_);
    archive_.videos[name] = std::move(record);
    metaCrc_[name] = meta_crc;
    VA_TELEM_COUNT("archive.puts", 1);
    return ArchiveError::None;
}

ArchiveGetResult
ArchiveService::get(const std::string &name,
                    const ArchiveGetOptions &options) const
{
    VA_TELEM_LATENCY("archive.get");
    ArchiveGetResult result;

    // Copy what the decode needs under the locks; the expensive
    // degrade/decode/decrypt/merge runs on private copies.
    EncodedVideo layout;
    std::optional<StreamCryptoMeta> crypto;
    std::optional<StreamPolicy> policy;
    std::vector<StreamRecord> streams;
    {
        std::shared_lock dir(dirMutex_);
        auto it = archive_.videos.find(name);
        if (it == archive_.videos.end()) {
            result.error = ArchiveError::NotFound;
            return result;
        }
        std::lock_guard shard(shardFor(name));
        // Precise-metadata integrity gate: the small precise part is
        // the one piece of the record that must never be served
        // wrong (the paper's CRC-protected metadata). A mismatch
        // aborts before any decode; in a cluster the caller repairs
        // from a replica blob and retries.
        auto crc_it = metaCrc_.find(name);
        if (crc_it != metaCrc_.end() &&
            crc32(serializeRecordMeta(it->second)) !=
                crc_it->second) {
            VA_TELEM_COUNT("archive.meta_crc_mismatches", 1);
            result.error = ArchiveError::CrcMismatch;
            return result;
        }
        layout = it->second.layout;
        crypto = it->second.crypto;
        policy = it->second.policy;
        streams = it->second.streams;
    }

    std::unique_ptr<StreamCryptor> cryptor;
    if (crypto) {
        if (options.key.empty()) {
            result.error = ArchiveError::KeyRequired;
            return result;
        }
        // Key-check gate: a stale or rotated key is a typed error,
        // not a garbage decode. keyCheck == 0 marks a legacy record
        // written before the check existed; those stay unchecked.
        if (crypto->keyCheck != 0 &&
            keyCheckValue(options.key, crypto->masterIv) !=
                crypto->keyCheck) {
            VA_TELEM_COUNT("archive.key_mismatches", 1);
            result.error = ArchiveError::KeyMismatch;
            return result;
        }
        cryptor = std::make_unique<StreamCryptor>(
            crypto->mode, options.key, crypto->masterIv);
    }

    // A stream is shed when its degradation class reaches the
    // threshold; records without a stored policy rank streams by
    // position (ascending t is ascending importance), so shedding
    // works on version-1 records too. Class 0 is never shed.
    const auto shedStream = [&](std::size_t i) {
        if (options.shedDegradeClass <= 0)
            return false;
        const int cls =
            policy ? policy->degradeClassOf(streams[i].schemeT)
                   : static_cast<int>(streams.size() - 1 - i);
        return cls >= options.shedDegradeClass;
    };
    const auto streamEncrypted = [&](int t) {
        return policy ? policy->encrypts(t) : crypto.has_value();
    };

    // Mirror storeAndRetrieve exactly: one child seed per stream,
    // drawn in ascending-t order before the parallel region. With
    // the same seed and raw BER, the decoded video is bit-identical
    // to the in-memory RealBchChannel round trip.
    Rng master(options.seed);
    std::vector<u64> seeds(streams.size());
    for (auto &seed : seeds)
        seed = master.next();

    std::vector<Bytes> read(streams.size());
    std::vector<CellReadStats> stats(streams.size());
    std::vector<u8> shed(streams.size(), 0);
    parallelFor(streams.size(), [&](std::size_t i) {
        StreamRecord &s = streams[i];
        if (shedStream(i)) {
            // Shed: serve the stream zero-filled at its true length
            // — no cell read, no BCH decode, no decryption. Merge
            // only needs the length for placement; the decoder (with
            // concealment) degrades those macroblocks gracefully.
            shed[i] = 1;
            read[i] = Bytes(
                static_cast<std::size_t>(s.trueBytes), 0);
            return;
        }
        if (options.injectRawBer > 0.0) {
            Rng stream_rng(seeds[i]);
            degradeCellImage(s.image, options.injectRawBer,
                             stream_rng);
        }
        Bytes payload = readCellImage(s.image, &stats[i]);
        if (cryptor && streamEncrypted(s.schemeT))
            payload = cryptor->decryptStream(
                static_cast<u32>(s.schemeT), payload,
                static_cast<std::size_t>(s.trueBytes));
        else
            payload.resize(
                static_cast<std::size_t>(s.trueBytes));
        read[i] = std::move(payload);
    });

    for (std::size_t i = 0; i < streams.size(); ++i) {
        result.streams.data[streams[i].schemeT] = std::move(read[i]);
        result.streams.bitLength[streams[i].schemeT] =
            streams[i].bitLength;
        result.cells.merge(stats[i]);
        if (shed[i]) {
            ++result.streamsShed;
            result.bytesShed += streams[i].image.payloadBytes;
        }
    }

    DecodeOptions decode;
    decode.concealErrors = options.conceal;
    result.decoded = decodeStreams(layout, result.streams, decode);
    result.frameHeaders = std::move(layout.frameHeaders);

    VA_TELEM_COUNT("archive.gets", 1);
    VA_TELEM_COUNT("archive.read.blocks_corrected",
                   result.cells.blocksCorrected);
    VA_TELEM_COUNT("archive.read.blocks_uncorrectable",
                   result.cells.blocksUncorrectable);
    if (result.streamsShed > 0) {
        VA_TELEM_COUNT("archive.read.streams_shed",
                       result.streamsShed);
        VA_TELEM_COUNT("archive.read.bytes_shed", result.bytesShed);
    }
    return result;
}

void
ArchiveService::prewarmCodes(const std::string &name) const
{
    // Snapshot the scheme list under the locks, build tables after:
    // cachedBchCode() may take the process-wide code-cache mutex and
    // must not nest inside the directory lock.
    std::set<int> scheme_ts;
    {
        std::shared_lock dir(dirMutex_);
        auto it = archive_.videos.find(name);
        if (it == archive_.videos.end())
            return;
        std::lock_guard shard(shardFor(name));
        for (const StreamRecord &s : it->second.streams)
            if (s.schemeT > 0)
                scheme_ts.insert(s.schemeT);
    }
    for (int t : scheme_ts)
        cachedBchCode(t);
}

ScrubReport
ArchiveService::scrub(const ScrubOptions &options)
{
    VA_TELEM_LATENCY("archive.scrub");
    simd::simdNoteStage("scrub");
    ScrubReport report;

    // Snapshot the sorted name list first, then scrub each video on
    // the pool with the task re-acquiring the directory lock itself.
    // No service lock may be held across parallelFor(): the pool
    // serializes top-level loops and runs user code under its own
    // mutex, so dir -> pool here against pool -> dir in a caller's
    // parallelFor-wrapped put()/get() would be a deadlock cycle.
    // Per-video seeds derive from (seed, index) over the snapshot
    // order, so the report is identical at any thread count.
    std::vector<std::string> names;
    std::set<int> scheme_ts;
    {
        std::shared_lock dir(dirMutex_);
        names.reserve(archive_.videos.size());
        for (const auto &[name, record] : archive_.videos) {
            names.push_back(name);
            std::lock_guard shard(shardFor(name));
            for (const StreamRecord &s : record.streams)
                if (s.schemeT > 0)
                    scheme_ts.insert(s.schemeT);
        }
    }

    // Build every BCH table the scrub will need up front: code
    // construction is orders of magnitude dearer than a decode, and
    // doing it here keeps the parallel workers on the lock-free
    // cache fast path instead of serializing on first use.
    for (int t : scheme_ts)
        cachedBchCode(t);

    std::vector<ScrubReport> locals(names.size());
    std::vector<u8> scrubbed(names.size(), 0);
    parallelFor(names.size(), [&](std::size_t v) {
        std::shared_lock dir(dirMutex_);
        auto it = archive_.videos.find(names[v]);
        if (it == archive_.videos.end())
            return; // removed after the snapshot: nothing to repair
        std::lock_guard shard(shardFor(names[v]));
        scrubRecordStreams(it->second, options,
                           Rng::deriveSeed(options.seed, v),
                           locals[v]);
        scrubbed[v] = 1;
    });

    for (std::size_t v = 0; v < names.size(); ++v) {
        report.cells.merge(locals[v].cells);
        report.blocksRewritten += locals[v].blocksRewritten;
        report.streamsMiscorrected += locals[v].streamsMiscorrected;
        report.streamsDamaged += locals[v].streamsDamaged;
        report.streams += locals[v].streams;
        report.videos += scrubbed[v];
    }

    VA_TELEM_COUNT("archive.scrubs", 1);
    VA_TELEM_COUNT("archive.scrub.blocks_read",
                   report.cells.blocksRead);
    VA_TELEM_COUNT("archive.scrub.blocks_rewritten",
                   report.blocksRewritten);
    VA_TELEM_COUNT("archive.scrub.bits_corrected",
                   report.cells.bitsCorrected);
    VA_TELEM_COUNT("archive.scrub.blocks_uncorrectable",
                   report.cells.blocksUncorrectable);
    VA_TELEM_COUNT("archive.scrub.streams_miscorrected",
                   report.streamsMiscorrected);
    return report;
}

void
ArchiveService::scrubRecordStreams(VideoRecord &record,
                                   const ScrubOptions &options,
                                   u64 video_seed,
                                   ScrubReport &local)
{
    for (std::size_t i = 0; i < record.streams.size(); ++i) {
        StreamRecord &s = record.streams[i];
        if (options.ageRawBer > 0.0) {
            Rng rng(Rng::deriveSeed(video_seed, i));
            degradeCellImage(s.image, options.ageRawBer, rng);
        }
        CellReadStats st;
        scrubCellImage(s.image, &st);
        local.cells.merge(st);
        local.blocksRewritten += st.blocksCorrected;
        if (st.blocksUncorrectable > 0) {
            ++local.streamsDamaged;
        } else if (s.schemeT > 0 &&
                   crc32(s.image.cells) != s.cellsCrc) {
            // Every block decoded "successfully" yet the repaired
            // image deviates from the pristine one: the decoder
            // silently landed on a wrong codeword.
            ++local.streamsMiscorrected;
        }
        ++local.streams;
    }
}

ScrubReport
ArchiveService::scrubVideo(const std::string &name,
                           const ScrubOptions &options)
{
    VA_TELEM_LATENCY("archive.scrub_video");
    ScrubReport report;
    // Build the needed BCH tables before taking the record locks
    // (same lock-ordering rule as scrub()).
    prewarmCodes(name);
    // Seeds derive from the name hash, not a visit index, so a
    // budgeted sweep ages each video identically no matter how the
    // scheduler ordered or split the round.
    const u64 video_seed = Rng::deriveSeed(
        options.seed, std::hash<std::string>{}(name));
    {
        std::shared_lock dir(dirMutex_);
        auto it = archive_.videos.find(name);
        if (it == archive_.videos.end())
            return report;
        std::lock_guard shard(shardFor(name));
        scrubRecordStreams(it->second, options, video_seed, report);
    }
    report.videos = 1;
    VA_TELEM_COUNT("archive.scrub.blocks_read",
                   report.cells.blocksRead);
    VA_TELEM_COUNT("archive.scrub.blocks_rewritten",
                   report.blocksRewritten);
    VA_TELEM_COUNT("archive.scrub.bits_corrected",
                   report.cells.bitsCorrected);
    VA_TELEM_COUNT("archive.scrub.blocks_uncorrectable",
                   report.cells.blocksUncorrectable);
    VA_TELEM_COUNT("archive.scrub.streams_miscorrected",
                   report.streamsMiscorrected);
    return report;
}

ArchiveError
ArchiveService::remove(const std::string &name)
{
    std::unique_lock dir(dirMutex_);
    if (archive_.videos.erase(name) == 0)
        return ArchiveError::NotFound;
    metaCrc_.erase(name);
    {
        std::lock_guard replicas(replicaMutex_);
        replicaMeta_.erase(name);
    }
    VA_TELEM_COUNT("archive.removes", 1);
    return ArchiveError::None;
}

ArchiveError
ArchiveService::rekeyVideo(const std::string &name,
                           const Bytes &old_key,
                           const EncryptionConfig &new_config,
                           u64 *streams_recrypted)
{
    VA_TELEM_LATENCY("archive.rekey_video");
    // BCH tables before the locks (the scrub lock-ordering rule).
    prewarmCodes(name);

    // Exclusive directory lock for the whole pass: the record's
    // cells, crypto metadata, policy and integrity CRC all change
    // together, and a concurrent get() must see either the old or
    // the new record — never a mix.
    std::unique_lock dir(dirMutex_);
    auto it = archive_.videos.find(name);
    if (it == archive_.videos.end())
        return ArchiveError::NotFound;
    std::lock_guard shard(shardFor(name));
    VideoRecord &record = it->second;

    if (record.crypto) {
        if (old_key.empty())
            return ArchiveError::KeyRequired;
        if (record.crypto->keyCheck != 0 &&
            keyCheckValue(old_key, record.crypto->masterIv) !=
                record.crypto->keyCheck) {
            VA_TELEM_COUNT("archive.key_mismatches", 1);
            return ArchiveError::KeyMismatch;
        }
    }

    std::vector<int> scheme_ts;
    scheme_ts.reserve(record.streams.size());
    for (const StreamRecord &s : record.streams)
        scheme_ts.push_back(s.schemeT);
    StreamPolicy next = buildStreamPolicy(
        scheme_ts, streamCipherOf(new_config.mode),
        new_config.keyId, new_config.encryptMinT);

    std::unique_ptr<StreamCryptor> old_cryptor;
    if (record.crypto)
        old_cryptor = std::make_unique<StreamCryptor>(
            record.crypto->mode, old_key, record.crypto->masterIv);
    StreamCryptor new_cryptor(new_config.mode, new_config.key,
                              new_config.masterIv);

    const auto wasEncrypted = [&](int t) {
        return record.policy ? record.policy->encrypts(t)
                             : record.crypto.has_value();
    };

    u64 recrypted = 0;
    for (StreamRecord &s : record.streams) {
        const bool from = old_cryptor != nullptr &&
                          wasEncrypted(s.schemeT);
        const bool to = next.encrypts(s.schemeT);
        if (!from && !to)
            continue; // plaintext stays plaintext: cells untouched
        // Read back through BCH correction (the scrub read), so the
        // re-encrypted image starts from a repaired payload.
        Bytes payload = readCellImage(s.image);
        if (from)
            payload = old_cryptor->decryptStream(
                static_cast<u32>(s.schemeT), payload,
                static_cast<std::size_t>(s.trueBytes));
        else
            payload.resize(static_cast<std::size_t>(s.trueBytes));
        if (to)
            payload = new_cryptor.encryptStream(
                static_cast<u32>(s.schemeT), payload);
        s.image = exportCellImage(payload, EccScheme{s.schemeT});
        s.cellsCrc = crc32(s.image.cells);
        ++recrypted;
    }

    if (next.anyEncrypted())
        record.crypto = new_cryptor.meta(new_config.keyId);
    else
        record.crypto.reset();
    record.policy = std::move(next);
    metaCrc_[name] = crc32(serializeRecordMeta(record));

    VA_TELEM_COUNT("archive.rekeys", 1);
    VA_TELEM_COUNT("archive.rekey.streams_recrypted", recrypted);
    if (streams_recrypted != nullptr)
        *streams_recrypted += recrypted;
    return ArchiveError::None;
}

RekeyReport
ArchiveService::rekey(const Bytes &old_key,
                      const EncryptionConfig &new_config)
{
    VA_TELEM_LATENCY("archive.rekey");
    RekeyReport report;
    for (const std::string &name : videoNames()) {
        switch (rekeyVideo(name, old_key, new_config,
                           &report.streamsRecrypted)) {
        case ArchiveError::None:
            ++report.videos;
            break;
        case ArchiveError::KeyMismatch:
        case ArchiveError::KeyRequired:
            ++report.keyMismatches;
            break;
        default:
            ++report.skipped;
            break;
        }
    }
    return report;
}

// --- precise-metadata replication --------------------------------------

namespace {

/** Allocation cap for payload placeholders parsed from replica
 * blobs arriving over the network (they never carry real content,
 * only sizes; a video beyond this is rejected as hostile). */
constexpr u64 kReplicaPayloadBound = u64{1} << 31;

} // namespace

Bytes
ArchiveService::exportMeta(const std::string &name) const
{
    std::shared_lock dir(dirMutex_);
    auto it = archive_.videos.find(name);
    if (it == archive_.videos.end())
        return {};
    std::lock_guard shard(shardFor(name));
    return serializeRecordMeta(it->second);
}

ArchiveError
ArchiveService::putReplicaMeta(const std::string &name, Bytes meta)
{
    RecordMeta parsed;
    if (name.empty() ||
        parseRecordMeta(meta, parsed, kReplicaPayloadBound) !=
            ArchiveError::None)
        return ArchiveError::Malformed;
    std::lock_guard replicas(replicaMutex_);
    replicaMeta_[name] = std::move(meta);
    VA_TELEM_COUNT("archive.replica_meta.held", 1);
    return ArchiveError::None;
}

Bytes
ArchiveService::replicaMeta(const std::string &name) const
{
    std::lock_guard replicas(replicaMutex_);
    auto it = replicaMeta_.find(name);
    return it == replicaMeta_.end() ? Bytes{} : it->second;
}

ArchiveError
ArchiveService::repairMeta(const std::string &name,
                           const Bytes &meta)
{
    RecordMeta parsed;
    if (parseRecordMeta(meta, parsed, kReplicaPayloadBound) !=
        ArchiveError::None)
        return ArchiveError::Malformed;

    std::unique_lock dir(dirMutex_);
    auto it = archive_.videos.find(name);
    if (it == archive_.videos.end())
        return ArchiveError::NotFound;
    std::lock_guard shard(shardFor(name));
    VideoRecord &record = it->second;
    // The cells stay: the blob must describe exactly the images this
    // record holds, or it belongs to some other incarnation of the
    // name and repairing from it would corrupt, not heal.
    if (parsed.streams.size() != record.streams.size())
        return ArchiveError::Malformed;
    for (std::size_t i = 0; i < parsed.streams.size(); ++i) {
        const StreamMeta &m = parsed.streams[i];
        const StreamRecord &s = record.streams[i];
        if (m.schemeT != s.schemeT ||
            m.payloadBytes != s.image.payloadBytes ||
            m.cellLength != s.image.cells.size())
            return ArchiveError::Malformed;
    }
    record.layout = std::move(parsed.layout);
    record.crypto = parsed.crypto;
    record.policy = parsed.policy;
    for (std::size_t i = 0; i < parsed.streams.size(); ++i) {
        const StreamMeta &m = parsed.streams[i];
        StreamRecord &s = record.streams[i];
        s.bitLength = m.bitLength;
        s.trueBytes = m.trueBytes;
        s.cellsCrc = m.cellsCrc;
    }
    // Re-serializing the repaired record reproduces the blob byte
    // for byte (shape-checked above), so the blob's CRC re-anchors
    // the integrity gate directly.
    metaCrc_[name] = crc32(meta);
    VA_TELEM_COUNT("archive.meta_repairs", 1);
    return ArchiveError::None;
}

bool
ArchiveService::damageMetaForTest(const std::string &name)
{
    std::unique_lock dir(dirMutex_);
    auto it = archive_.videos.find(name);
    if (it == archive_.videos.end())
        return false;
    std::lock_guard shard(shardFor(name));
    // Any mutation the meta serialization covers works; stream
    // bit lengths are precise data every decode depends on.
    for (StreamRecord &s : it->second.streams)
        s.bitLength ^= 1;
    return true;
}

// --- record migration (rebalance tier) ---------------------------------

namespace {

void
appendBe32(Bytes &out, u32 v)
{
    out.push_back(static_cast<u8>(v >> 24));
    out.push_back(static_cast<u8>(v >> 16));
    out.push_back(static_cast<u8>(v >> 8));
    out.push_back(static_cast<u8>(v));
}

u32
readBe32(const u8 *p)
{
    return static_cast<u32>(p[0]) << 24 |
           static_cast<u32>(p[1]) << 16 |
           static_cast<u32>(p[2]) << 8 | static_cast<u32>(p[3]);
}

} // namespace

bool
ArchiveService::contains(const std::string &name) const
{
    std::shared_lock dir(dirMutex_);
    return archive_.videos.find(name) != archive_.videos.end();
}

Bytes
ArchiveService::exportRecord(const std::string &name) const
{
    VA_TELEM_LATENCY("archive.export_record");
    std::shared_lock dir(dirMutex_);
    auto it = archive_.videos.find(name);
    if (it == archive_.videos.end())
        return {};
    std::lock_guard shard(shardFor(name));
    const VideoRecord &record = it->second;
    Bytes meta = serializeRecordMeta(record);
    std::size_t cells = 0;
    for (const StreamRecord &s : record.streams)
        cells += s.image.cells.size();
    Bytes out;
    out.reserve(4 + meta.size() + cells);
    appendBe32(out, static_cast<u32>(meta.size()));
    out.insert(out.end(), meta.begin(), meta.end());
    for (const StreamRecord &s : record.streams)
        out.insert(out.end(), s.image.cells.begin(),
                   s.image.cells.end());
    VA_TELEM_COUNT("archive.record_exports", 1);
    return out;
}

ArchiveError
ArchiveService::adoptRecord(const std::string &name,
                            const Bytes &blob, bool overwrite,
                            bool *adopted)
{
    VA_TELEM_LATENCY("archive.adopt_record");
    if (adopted != nullptr)
        *adopted = false;
    if (name.empty() || blob.size() < 4)
        return ArchiveError::Malformed;
    const u32 meta_len = readBe32(blob.data());
    if (static_cast<u64>(meta_len) + 4 > blob.size())
        return ArchiveError::Malformed;
    Bytes meta(blob.begin() + 4, blob.begin() + 4 + meta_len);
    RecordMeta parsed;
    if (parseRecordMeta(meta, parsed, kReplicaPayloadBound) !=
        ArchiveError::None)
        return ArchiveError::Malformed;

    // The cell region must match the per-stream shapes exactly: a
    // short or padded blob belongs to some other record.
    u64 cells_total = 0;
    for (const StreamMeta &m : parsed.streams)
        cells_total += m.cellLength;
    if (cells_total != blob.size() - 4 - meta_len)
        return ArchiveError::Malformed;

    VideoRecord record;
    record.layout = std::move(parsed.layout);
    record.crypto = parsed.crypto;
    record.policy = parsed.policy;
    record.streams.reserve(parsed.streams.size());
    std::size_t off = 4 + meta_len;
    for (const StreamMeta &m : parsed.streams) {
        StreamRecord s;
        s.schemeT = m.schemeT;
        s.bitLength = m.bitLength;
        s.trueBytes = m.trueBytes;
        s.cellsCrc = m.cellsCrc;
        s.image.schemeT = m.schemeT;
        s.image.payloadBytes = m.payloadBytes;
        s.image.cells.assign(
            blob.begin() + static_cast<std::ptrdiff_t>(off),
            blob.begin() +
                static_cast<std::ptrdiff_t>(off + m.cellLength));
        off += static_cast<std::size_t>(m.cellLength);
        record.streams.push_back(std::move(s));
    }

    std::unique_lock dir(dirMutex_);
    if (!overwrite &&
        archive_.videos.find(name) != archive_.videos.end()) {
        VA_TELEM_COUNT("archive.record_adopt_skipped", 1);
        return ArchiveError::None;
    }
    archive_.videos[name] = std::move(record);
    metaCrc_[name] = crc32(meta);
    if (adopted != nullptr)
        *adopted = true;
    VA_TELEM_COUNT("archive.record_adopts", 1);
    return ArchiveError::None;
}

std::vector<std::string>
ArchiveService::replicaNames() const
{
    std::lock_guard replicas(replicaMutex_);
    std::vector<std::string> names;
    names.reserve(replicaMeta_.size());
    for (const auto &[name, meta] : replicaMeta_)
        names.push_back(name);
    return names;
}

ArchiveGetResult
ArchiveService::getFromReplica(const std::string &name) const
{
    VA_TELEM_LATENCY("archive.replica_get");
    ArchiveGetResult result;
    Bytes blob = replicaMeta(name);
    if (blob.empty()) {
        result.error = ArchiveError::NotFound;
        return result;
    }
    RecordMeta parsed;
    if (parseRecordMeta(blob, parsed, kReplicaPayloadBound) !=
        ArchiveError::None) {
        result.error = ArchiveError::Malformed;
        return result;
    }
    // Every stream zero-filled at its true length: the merge only
    // needs placement, and the concealing decoder treats the missing
    // content as damage. The whole video counts as shed.
    for (const StreamMeta &m : parsed.streams) {
        result.streams.data[m.schemeT] =
            Bytes(static_cast<std::size_t>(m.trueBytes), 0);
        result.streams.bitLength[m.schemeT] = m.bitLength;
        ++result.streamsShed;
        result.bytesShed += m.payloadBytes;
    }
    DecodeOptions decode;
    decode.concealErrors = true;
    result.decoded = decodeStreams(parsed.layout, result.streams,
                                   decode);
    result.frameHeaders = std::move(parsed.layout.frameHeaders);
    VA_TELEM_COUNT("archive.replica_gets", 1);
    return result;
}

KeyEpochReport
ArchiveService::verifyKeyEpochs(u32 expected_key_id) const
{
    VA_TELEM_LATENCY("archive.verify_key_epochs");
    KeyEpochReport report;
    std::shared_lock dir(dirMutex_);
    for (const auto &[name, record] : archive_.videos) {
        ++report.videos;
        if (!record.crypto)
            continue;
        ++report.encrypted;
        report.newestKeyId =
            std::max(report.newestKeyId, record.crypto->keyId);
        if (record.policy && record.policy->anyEncrypted() &&
            record.policy->keyId != record.crypto->keyId)
            report.inconsistentNames.push_back(name);
    }
    const u32 expected = expected_key_id != 0 ? expected_key_id
                                              : report.newestKeyId;
    for (const auto &[name, record] : archive_.videos)
        if (record.crypto && record.crypto->keyId < expected)
            report.staleNames.push_back(name);
    if (!report.staleNames.empty())
        VA_TELEM_COUNT("archive.key_epoch_stale",
                       report.staleNames.size());
    return report;
}

std::vector<std::string>
ArchiveService::videoNames() const
{
    std::shared_lock dir(dirMutex_);
    std::vector<std::string> names;
    names.reserve(archive_.videos.size());
    for (const auto &[name, record] : archive_.videos)
        names.push_back(name);
    return names;
}

std::vector<ArchiveVideoStat>
ArchiveService::stat() const
{
    std::shared_lock dir(dirMutex_);
    std::vector<ArchiveVideoStat> stats;
    stats.reserve(archive_.videos.size());
    for (const auto &[name, record] : archive_.videos) {
        ArchiveVideoStat s;
        s.name = name;
        s.width = record.layout.header.width;
        s.height = record.layout.header.height;
        s.frames = record.layout.frameHeaders.size();
        s.streamCount = record.streams.size();
        s.payloadBytes = record.payloadBytes();
        s.cellBytes = record.cellBytes();
        s.encrypted = record.crypto.has_value();
        stats.push_back(std::move(s));
    }
    return stats;
}

std::size_t
ArchiveService::videoCount() const
{
    std::shared_lock dir(dirMutex_);
    return archive_.videos.size();
}

} // namespace videoapp
