#include "archive/vapp_container.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/crc32.h"

namespace videoapp {

namespace {

constexpr u32 kRecordMagic = 0x56524543; // "VREC"
constexpr std::size_t kSuperblockSize = 32;

void
putU16(Bytes &out, u16 v)
{
    out.push_back(static_cast<u8>(v >> 8));
    out.push_back(static_cast<u8>(v));
}

void
putU32(Bytes &out, u32 v)
{
    putU16(out, static_cast<u16>(v >> 16));
    putU16(out, static_cast<u16>(v));
}

void
putU64(Bytes &out, u64 v)
{
    putU32(out, static_cast<u32>(v >> 32));
    putU32(out, static_cast<u32>(v));
}

/** Bounds-checked big-endian reader over a byte range. */
struct ByteCursor
{
    const u8 *data;
    std::size_t size;
    std::size_t pos = 0;
    bool ok = true;

    u8
    u8v()
    {
        if (pos >= size) {
            ok = false;
            return 0;
        }
        return data[pos++];
    }

    u16
    u16v()
    {
        // Two statements: the evaluation order of a|b is unspecified.
        u16 hi = u8v();
        u16 lo = u8v();
        return static_cast<u16>(hi << 8 | lo);
    }

    u32
    u32v()
    {
        u32 hi = u16v();
        return hi << 16 | u16v();
    }

    u64
    u64v()
    {
        u64 hi = u32v();
        return hi << 32 | u32v();
    }

    std::size_t remaining() const { return ok ? size - pos : 0; }
};

} // namespace

const char *
archiveErrorName(ArchiveError error)
{
    switch (error) {
      case ArchiveError::None: return "none";
      case ArchiveError::Io: return "io";
      case ArchiveError::BadMagic: return "bad-magic";
      case ArchiveError::BadVersion: return "bad-version";
      case ArchiveError::ShortRead: return "short-read";
      case ArchiveError::CrcMismatch: return "crc-mismatch";
      case ArchiveError::Malformed: return "malformed";
      case ArchiveError::NotFound: return "not-found";
      case ArchiveError::KeyRequired: return "key-required";
      case ArchiveError::KeyMismatch: return "key-mismatch";
    }
    return "unknown";
}

u64
VideoRecord::payloadBytes() const
{
    u64 total = 0;
    for (const StreamRecord &s : streams)
        total += s.image.payloadBytes;
    return total;
}

u64
VideoRecord::cellBytes() const
{
    u64 total = 0;
    for (const StreamRecord &s : streams)
        total += s.image.cells.size();
    return total;
}

Bytes
serializeRecordMeta(const VideoRecord &record)
{
    Bytes meta;
    putU32(meta, kRecordMagic);

    Bytes headers = serializeHeaders(record.layout);
    putU32(meta, static_cast<u32>(headers.size()));
    meta.insert(meta.end(), headers.begin(), headers.end());

    // Payload placeholders: only the per-frame byte sizes survive;
    // the content lives in the stream cell images.
    putU32(meta, static_cast<u32>(record.layout.payloads.size()));
    for (const Bytes &p : record.layout.payloads)
        putU64(meta, p.size());

    // Crypto section tag: 0 = none, 1 = the version-1 layout,
    // 2 = version-1 fields plus the key-check value. Records whose
    // keyCheck is 0 (legacy, unchecked) keep the version-1 layout so
    // parse -> serialize stays byte-canonical for old blobs.
    const u8 crypto_tag =
        record.crypto ? (record.crypto->keyCheck != 0 ? 2 : 1) : 0;
    meta.push_back(crypto_tag);
    if (record.crypto) {
        meta.push_back(static_cast<u8>(record.crypto->mode));
        putU32(meta, record.crypto->keyId);
        meta.insert(meta.end(), record.crypto->masterIv.begin(),
                    record.crypto->masterIv.end());
        if (crypto_tag == 2)
            putU32(meta, record.crypto->keyCheck);
    }

    putU16(meta, static_cast<u16>(record.streams.size()));
    for (const StreamRecord &s : record.streams) {
        meta.push_back(static_cast<u8>(s.schemeT));
        putU64(meta, s.bitLength);
        putU64(meta, s.trueBytes);
        putU64(meta, s.image.payloadBytes);
        putU64(meta, s.image.cells.size());
        putU32(meta, s.cellsCrc);
    }
    // Version 2: the policy record rides after the stream table.
    // Absent on version-1 records, and presence is unambiguous —
    // a version-1 record ends exactly at the stream table.
    if (record.policy)
        appendStreamPolicy(meta, *record.policy);
    return meta;
}

ArchiveError
parseRecordMeta(const Bytes &meta, RecordMeta &out, u64 payload_bound)
{
    const u8 *bytes = meta.data();
    const std::size_t meta_len = meta.size();
    ByteCursor in{bytes, meta_len};
    if (in.u32v() != kRecordMagic)
        return in.ok ? ArchiveError::Malformed
                     : ArchiveError::ShortRead;

    u32 header_len = in.u32v();
    if (!in.ok || header_len > in.remaining())
        return ArchiveError::ShortRead;
    Bytes header_blob(bytes + in.pos, bytes + in.pos + header_len);
    in.pos += header_len;
    auto layout = deserializeHeaders(header_blob);
    if (!layout)
        return ArchiveError::Malformed;
    out.layout = std::move(*layout);

    u32 frames = in.u32v();
    if (!in.ok || frames > in.remaining() / 8)
        return ArchiveError::ShortRead;
    if (frames != out.layout.frameHeaders.size())
        return ArchiveError::Malformed;
    out.layout.payloads.clear();
    u64 payload_total = 0;
    for (u32 f = 0; f < frames; ++f) {
        u64 size = in.u64v();
        payload_total += size;
        // Placeholder sizes can only come from real payloads, which
        // the (larger) cell section holds; anything bigger is bogus
        // and must not drive allocation.
        if (!in.ok ||
            payload_total > payload_bound + 16 * u64{frames} + 1024)
            return ArchiveError::Malformed;
        out.layout.payloads.emplace_back(
            static_cast<std::size_t>(size), 0);
    }

    out.crypto.reset();
    u8 crypto_tag = in.u8v();
    if (crypto_tag > 2)
        return ArchiveError::Malformed;
    if (crypto_tag != 0) {
        StreamCryptoMeta crypto;
        u8 mode = in.u8v();
        if (mode > static_cast<u8>(CipherMode::CFB))
            return ArchiveError::Malformed;
        crypto.mode = static_cast<CipherMode>(mode);
        crypto.keyId = in.u32v();
        for (u8 &b : crypto.masterIv)
            b = in.u8v();
        if (crypto_tag == 2) {
            crypto.keyCheck = in.u32v();
            // Tag 2 exists only to carry a non-zero check; a zero
            // one re-serializes as tag 1 and breaks canonicality.
            if (in.ok && crypto.keyCheck == 0)
                return ArchiveError::Malformed;
        }
        if (!in.ok)
            return ArchiveError::ShortRead;
        out.crypto = crypto;
    }

    u16 stream_count = in.u16v();
    out.streams.assign(stream_count, StreamMeta{});
    int prev_t = -1;
    for (StreamMeta &s : out.streams) {
        s.schemeT = in.u8v();
        s.bitLength = in.u64v();
        s.trueBytes = in.u64v();
        s.payloadBytes = in.u64v();
        s.cellLength = in.u64v();
        s.cellsCrc = in.u32v();
        if (!in.ok)
            return ArchiveError::ShortRead;
        if (s.schemeT <= prev_t || s.schemeT > 58 ||
            s.trueBytes > s.payloadBytes ||
            s.payloadBytes > s.cellLength)
            return ArchiveError::Malformed;
        prev_t = s.schemeT;
    }
    // Version 2: a trailing policy record. It must cover exactly the
    // streams of the table above (one entry per stream, same scheme
    // t values) so no layer can ever see two answers.
    out.policy.reset();
    if (in.ok && in.pos < meta_len) {
        StreamPolicy policy;
        if (!parseStreamPolicy(bytes, meta_len, in.pos, policy))
            return ArchiveError::Malformed;
        if (policy.entries.size() != out.streams.size())
            return ArchiveError::Malformed;
        for (std::size_t i = 0; i < policy.entries.size(); ++i)
            if (policy.entries[i].schemeT != out.streams[i].schemeT)
                return ArchiveError::Malformed;
        out.policy = std::move(policy);
    }
    if (in.pos != meta_len)
        return ArchiveError::Malformed;
    return ArchiveError::None;
}

namespace {

/**
 * Parse a record's meta + cells range. @p meta_len bytes of metadata
 * at @p bytes, cells following up to @p record_len.
 */
ArchiveError
parseRecord(const u8 *bytes, std::size_t meta_len,
            std::size_t record_len, VideoRecord &record)
{
    RecordMeta meta;
    ArchiveError err = parseRecordMeta(
        Bytes(bytes, bytes + meta_len), meta, record_len);
    if (err != ArchiveError::None)
        return err;
    record.layout = std::move(meta.layout);
    record.crypto = meta.crypto;
    record.policy = meta.policy;
    record.streams.assign(meta.streams.size(), StreamRecord{});
    std::size_t cell_pos = meta_len;
    for (std::size_t i = 0; i < meta.streams.size(); ++i) {
        const StreamMeta &m = meta.streams[i];
        StreamRecord &s = record.streams[i];
        if (m.cellLength > record_len - cell_pos)
            return ArchiveError::Malformed;
        s.schemeT = m.schemeT;
        s.bitLength = m.bitLength;
        s.trueBytes = m.trueBytes;
        s.cellsCrc = m.cellsCrc;
        s.image.schemeT = m.schemeT;
        s.image.payloadBytes = m.payloadBytes;
        s.image.cells.assign(
            bytes + cell_pos,
            bytes + cell_pos + static_cast<std::size_t>(m.cellLength));
        cell_pos += static_cast<std::size_t>(m.cellLength);
    }
    if (cell_pos != record_len)
        return ArchiveError::Malformed;
    return ArchiveError::None;
}

} // namespace

Bytes
serializeArchive(const Archive &archive)
{
    // The held-replica section exists only in version 3; an archive
    // holding nothing keeps the version 2 layout so older readers
    // can still open the file.
    const u32 version = archive.replicas.empty()
                            ? std::min(archive.version, 2u)
                            : std::max(archive.version, 3u);

    Bytes out(kSuperblockSize, 0);

    struct DirEntry
    {
        const std::string *name;
        u64 offset = 0;
        u64 length = 0;
        u64 metaLength = 0;
        u32 metaCrc = 0;
    };
    std::vector<DirEntry> entries;
    entries.reserve(archive.videos.size());

    for (const auto &[name, record] : archive.videos) {
        DirEntry e;
        e.name = &name;
        e.offset = out.size();
        Bytes meta = serializeRecordMeta(record);
        e.metaLength = meta.size();
        e.metaCrc = crc32(meta);
        out.insert(out.end(), meta.begin(), meta.end());
        for (const StreamRecord &s : record.streams)
            out.insert(out.end(), s.image.cells.begin(),
                       s.image.cells.end());
        e.length = out.size() - e.offset;
        entries.push_back(e);
    }

    u64 dir_offset = out.size();
    Bytes dir;
    putU32(dir, static_cast<u32>(entries.size()));
    for (const DirEntry &e : entries) {
        putU16(dir, static_cast<u16>(e.name->size()));
        dir.insert(dir.end(), e.name->begin(), e.name->end());
        putU64(dir, e.offset);
        putU64(dir, e.length);
        putU64(dir, e.metaLength);
        putU32(dir, e.metaCrc);
    }
    if (version >= 3) {
        putU32(dir, static_cast<u32>(archive.replicas.size()));
        for (const auto &[name, blob] : archive.replicas) {
            putU16(dir, static_cast<u16>(name.size()));
            dir.insert(dir.end(), name.begin(), name.end());
            putU32(dir, static_cast<u32>(blob.size()));
            dir.insert(dir.end(), blob.begin(), blob.end());
        }
    }
    out.insert(out.end(), dir.begin(), dir.end());

    Bytes super;
    putU32(super, kVappMagic);
    putU32(super, version);
    putU64(super, dir_offset);
    putU64(super, dir.size());
    putU32(super, crc32(dir));
    putU32(super, crc32(super));
    std::copy(super.begin(), super.end(), out.begin());
    return out;
}

ArchiveError
parseArchive(const Bytes &blob, Archive &out)
{
    if (blob.size() < kSuperblockSize)
        return ArchiveError::ShortRead;
    ByteCursor in{blob.data(), kSuperblockSize};
    if (in.u32v() != kVappMagic)
        return ArchiveError::BadMagic;
    u32 version = in.u32v();
    if (version < kVappMinFormatVersion ||
        version > kVappFormatVersion)
        return ArchiveError::BadVersion;
    u64 dir_offset = in.u64v();
    u64 dir_length = in.u64v();
    u32 dir_crc = in.u32v();
    u32 super_crc = in.u32v();
    if (crc32(blob.data(), kSuperblockSize - 4) != super_crc)
        return ArchiveError::CrcMismatch;
    if (dir_offset > blob.size() ||
        dir_length > blob.size() - dir_offset)
        return ArchiveError::ShortRead;
    if (crc32(blob.data() + dir_offset,
              static_cast<std::size_t>(dir_length)) != dir_crc)
        return ArchiveError::CrcMismatch;

    out.version = version;
    out.videos.clear();
    out.replicas.clear();

    ByteCursor dir{blob.data() + dir_offset,
                   static_cast<std::size_t>(dir_length)};
    u32 count = dir.u32v();
    for (u32 i = 0; i < count; ++i) {
        u16 name_len = dir.u16v();
        if (!dir.ok || name_len > dir.remaining())
            return ArchiveError::ShortRead;
        std::string name(
            reinterpret_cast<const char *>(dir.data + dir.pos),
            name_len);
        dir.pos += name_len;
        u64 offset = dir.u64v();
        u64 length = dir.u64v();
        u64 meta_length = dir.u64v();
        u32 meta_crc = dir.u32v();
        if (!dir.ok)
            return ArchiveError::ShortRead;
        if (offset < kSuperblockSize || offset > blob.size() ||
            length > blob.size() - offset || meta_length > length ||
            out.videos.count(name))
            return ArchiveError::Malformed;
        if (crc32(blob.data() + offset,
                  static_cast<std::size_t>(meta_length)) != meta_crc)
            return ArchiveError::CrcMismatch;
        VideoRecord record;
        ArchiveError err = parseRecord(
            blob.data() + offset,
            static_cast<std::size_t>(meta_length),
            static_cast<std::size_t>(length), record);
        if (err != ArchiveError::None)
            return err;
        out.videos.emplace(std::move(name), std::move(record));
    }
    if (version >= 3) {
        u32 replica_count = dir.u32v();
        if (!dir.ok)
            return ArchiveError::ShortRead;
        for (u32 i = 0; i < replica_count; ++i) {
            u16 name_len = dir.u16v();
            if (!dir.ok || name_len > dir.remaining())
                return ArchiveError::ShortRead;
            std::string name(
                reinterpret_cast<const char *>(dir.data + dir.pos),
                name_len);
            dir.pos += name_len;
            u32 blob_len = dir.u32v();
            if (!dir.ok || blob_len > dir.remaining())
                return ArchiveError::ShortRead;
            if (out.replicas.count(name))
                return ArchiveError::Malformed;
            Bytes blob(dir.data + dir.pos,
                       dir.data + dir.pos + blob_len);
            dir.pos += blob_len;
            out.replicas.emplace(std::move(name), std::move(blob));
        }
    }
    if (dir.pos != dir.size)
        return ArchiveError::Malformed;
    return ArchiveError::None;
}

ArchiveError
readArchive(const std::string &path, Archive &out)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        return ArchiveError::Io;
    Bytes blob((std::istreambuf_iterator<char>(f)),
               std::istreambuf_iterator<char>());
    if (f.bad())
        return ArchiveError::Io;
    return parseArchive(blob, out);
}

ArchiveError
writeArchive(const Archive &archive, const std::string &path)
{
    Bytes blob = serializeArchive(archive);
    std::string tmp = path + ".tmp";
    {
        std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
        if (!f)
            return ArchiveError::Io;
        f.write(reinterpret_cast<const char *>(blob.data()),
                static_cast<std::streamsize>(blob.size()));
        if (!f) {
            std::remove(tmp.c_str());
            return ArchiveError::Io;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return ArchiveError::Io;
    }
    return ArchiveError::None;
}

} // namespace videoapp
