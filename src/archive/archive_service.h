/**
 * @file
 * Concurrent video store service over the VAPP container.
 *
 * put() runs a prepared video's streams through cell-image export
 * (optionally encrypting first, Section 5.3) and files the record;
 * get() re-reads the modeled device — with optional error injection
 * at a chosen raw BER, reproducing the in-memory pipeline bit for
 * bit at equal seeds — and decodes through the existing pipeline;
 * scrub() re-reads every block of every stream, counts BCH
 * corrections and detected miscorrections, and rewrites degraded
 * blocks (the paper's 3-month scrub interval made an operation).
 *
 * Thread safety: all operations may be called concurrently,
 * including from common/parallel pool workers. A reader-writer
 * directory lock guards the name -> record map; per-video sharded
 * mutexes (16 shards, keyed by name hash) serialize access to a
 * record's cells, so operations on different videos proceed in
 * parallel. Stochastic operations draw per-stream/per-video seeds
 * deterministically before any parallel region, so results are
 * bit-identical at any thread count.
 *
 * Durability: mutations act on the in-memory archive; flush()
 * persists atomically (temp + rename). open() + get() after a
 * process restart reproduces the exact stored bitstreams.
 */

#ifndef VIDEOAPP_ARCHIVE_ARCHIVE_SERVICE_H_
#define VIDEOAPP_ARCHIVE_ARCHIVE_SERVICE_H_

#include <array>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "archive/vapp_container.h"
#include "core/pipeline.h"

namespace videoapp {

struct ArchivePutOptions
{
    /** Encrypt each stream before storage (mode/key/IV/keyId). */
    std::optional<EncryptionConfig> encryption;
};

struct ArchiveGetOptions
{
    /**
     * When > 0, age a copy of the device at this raw bit error rate
     * before decoding (the stored image itself is untouched). At the
     * paper's 1e-3 with the same seed, the decode is bit-identical
     * to the in-memory RealBchChannel round trip.
     */
    double injectRawBer = 0.0;
    u64 seed = 1;
    /** Conceal slices the decoder flags as damaged. */
    bool conceal = false;
    /** Decryption key; required when the record is encrypted. */
    Bytes key;
    /**
     * Load shedding: when > 0, streams whose policy degradation
     * class is >= this are not read at all — they are served
     * zero-filled at their true length, skipping cell reads, BCH
     * decode and decryption entirely. Class 0 (the most important
     * stream) is never shed. Records without a stored policy fall
     * back to rank-by-position (streams are ascending-importance).
     */
    int shedDegradeClass = 0;
};

struct ArchiveGetResult
{
    ArchiveError error = ArchiveError::None;
    Video decoded;
    /** The retrieved (decrypted, exact-length) streams. */
    StreamSet streams;
    CellReadStats cells;
    /** Precise per-frame headers of the record (encode order) — the
     * serving layer derives GOP boundaries from the I-frame display
     * indices without re-reading the archive. */
    std::vector<FrameHeader> frameHeaders;
    /** Streams skipped by load shedding (served zero-filled). */
    u64 streamsShed = 0;
    /** Stored payload bytes those shed streams did not read. */
    u64 bytesShed = 0;
};

struct ScrubOptions
{
    /** When > 0, age every stored image at this raw BER first —
     * models the time since the last scrub pass. */
    double ageRawBer = 0.0;
    u64 seed = 1;
};

struct ScrubReport
{
    u64 videos = 0;
    u64 streams = 0;
    CellReadStats cells;
    /** Corrected blocks whose repaired codeword was written back. */
    u64 blocksRewritten = 0;
    /** Streams fully "corrected" whose repaired image still deviates
     * from its pristine CRC: at least one silent miscorrection. */
    u64 streamsMiscorrected = 0;
    /** Streams left with uncorrectable blocks. */
    u64 streamsDamaged = 0;
};

/** Tally of one re-key pass over the archive. */
struct RekeyReport
{
    /** Records re-encrypted under the new config. */
    u64 videos = 0;
    /** Streams whose cells were rewritten (decrypted and/or
     * re-encrypted; plaintext-to-plaintext streams are untouched). */
    u64 streamsRecrypted = 0;
    /** Records left alone because the supplied old key failed their
     * key check (counted, never silently corrupted). */
    u64 keyMismatches = 0;
    /** Records removed between the snapshot and the visit. */
    u64 skipped = 0;
};

/** Tally of one key-epoch GC scan (see verifyKeyEpochs). */
struct KeyEpochReport
{
    /** Records scanned. */
    u64 videos = 0;
    /** Records carrying crypto metadata. */
    u64 encrypted = 0;
    /** Highest key-id referenced by any record (the live epoch). */
    u32 newestKeyId = 0;
    /** Encrypted records still referencing a key-id older than the
     * expected one — retired epochs a completed rekey should have
     * erased. */
    std::vector<std::string> staleNames;
    /** Records whose crypto key-id and policy key-id disagree (a
     * half-applied rotation). */
    std::vector<std::string> inconsistentNames;

    bool
    clean() const
    {
        return staleNames.empty() && inconsistentNames.empty();
    }
};

/** Directory listing entry (archive stat). */
struct ArchiveVideoStat
{
    std::string name;
    int width = 0;
    int height = 0;
    std::size_t frames = 0;
    std::size_t streamCount = 0;
    u64 payloadBytes = 0;
    u64 cellBytes = 0;
    bool encrypted = false;
};

class ArchiveService
{
  public:
    explicit ArchiveService(std::string path);
    ArchiveService(const ArchiveService &) = delete;
    ArchiveService &operator=(const ArchiveService &) = delete;

    /**
     * Load the archive at the configured path. A missing file is an
     * empty archive when @p create_if_missing (the file appears on
     * first flush); any other read problem is the error.
     */
    ArchiveError open(bool create_if_missing = true);

    /** Persist the current state atomically. */
    ArchiveError flush();

    /** Store (or replace) @p name. Encoding runs on the pool. */
    ArchiveError put(const std::string &name,
                     const PreparedVideo &prepared,
                     const ArchivePutOptions &options = {});

    /** Retrieve and decode @p name. */
    ArchiveGetResult get(const std::string &name,
                         const ArchiveGetOptions &options = {}) const;

    /**
     * Build every BCH decode table @p name's streams use, ahead of
     * a get(). Code construction costs orders of magnitude more
     * than one block decode, so a single-flight decode leader calls
     * this once and every coalesced request's block decodes then
     * hit the shared table cache's lock-free fast path. Unknown
     * names are a no-op.
     */
    void prewarmCodes(const std::string &name) const;

    /** Scrub every video (videos run on the pool). */
    ScrubReport scrub(const ScrubOptions &options = {});

    /**
     * Scrub a single video (the budgeted background scheduler's
     * unit of work). Per-stream aging seeds derive from
     * (options.seed, name hash), so a sweep is reproducible
     * regardless of visit order. Unknown names return a zero report.
     */
    ScrubReport scrubVideo(const std::string &name,
                           const ScrubOptions &options = {});

    /** Drop @p name from the archive. */
    ArchiveError remove(const std::string &name);

    /**
     * Re-key scrub for one video: read every stream back through BCH
     * correction, decrypt streams the stored policy marks encrypted
     * with @p old_key, re-encrypt under @p new_config (mode, key,
     * IV, key-id and selective threshold may all change), and
     * re-anchor the precise metadata — all in place, with zero
     * precise-data loss. An unencrypted record is simply encrypted
     * under the new config. Guards: an encrypted record whose
     * key-check value rejects @p old_key returns KeyMismatch and is
     * left untouched (legacy keyCheck==0 records cannot be checked
     * and are trusted). Runs under the exclusive directory lock, so
     * readers never observe a half-rekeyed record.
     */
    ArchiveError rekeyVideo(const std::string &name,
                            const Bytes &old_key,
                            const EncryptionConfig &new_config,
                            u64 *streams_recrypted = nullptr);

    /** Re-key every video (the background key-rotation pass). */
    RekeyReport rekey(const Bytes &old_key,
                      const EncryptionConfig &new_config);

    // --- precise-metadata replication (cluster tier) ---------------

    /**
     * @p name's precise metadata serialized as a standalone blob
     * (layout, crypto, per-stream shape — no cells). Empty when the
     * video is unknown. This is what a shard replicates to its ring
     * successors after a PUT.
     */
    Bytes exportMeta(const std::string &name) const;

    /**
     * Hold a replica precise-meta blob for @p name on behalf of a
     * peer shard. The blob is validated (total parse) before it is
     * kept; Malformed rejects it. Replicas live beside the archive
     * in memory — they protect against *metadata* damage on the
     * owner, not node loss, and are re-shipped on every PUT.
     */
    ArchiveError putReplicaMeta(const std::string &name, Bytes meta);

    /** The replica blob held for @p name (empty when none). */
    Bytes replicaMeta(const std::string &name) const;

    /**
     * Repair @p name's precise metadata from @p meta (a replica
     * blob). The blob must match the existing record's cell-image
     * shapes (stream count, schemeT, payload/cell sizes) — the
     * cells themselves are kept, only the precise parts are
     * replaced and the integrity CRC re-anchored.
     */
    ArchiveError repairMeta(const std::string &name,
                            const Bytes &meta);

    /**
     * Test hook: corrupt @p name's precise metadata in memory
     * without touching its integrity CRC, so the next get() fails
     * CrcMismatch — the cluster repair path's trigger. False when
     * the video is unknown.
     */
    bool damageMetaForTest(const std::string &name);

    // --- record migration (rebalance tier) -------------------------

    /** True when @p name is stored locally (owner copy). */
    bool contains(const std::string &name) const;

    /**
     * @p name's full record as one opaque transfer blob: the
     * CRC-checked precise metadata (length-prefixed) followed by the
     * raw approximate cell images in stream order. This is the unit
     * the migration engine ships over CELL_PULL/CELL_PUSH. The cells
     * travel verbatim — accumulated bit errors move with the record,
     * exactly as if the physical device were remapped — while the
     * precise part stays CRC-checkable end to end. Empty when the
     * video is unknown.
     */
    Bytes exportRecord(const std::string &name) const;

    /**
     * Install a record from an exportRecord() blob. The blob is
     * fully validated (total meta parse, exact cell-region length
     * against the per-stream shapes) before anything is touched;
     * Malformed rejects it. When the name already exists and
     * @p overwrite is false, the existing record wins — a concurrent
     * PUT at the new owner must never be clobbered by a migration
     * push — and the call returns None with *adopted = false.
     */
    ArchiveError adoptRecord(const std::string &name,
                             const Bytes &blob, bool overwrite,
                             bool *adopted = nullptr);

    /** Names of every replica blob held for peers (sorted) — the
     * survey a rebuild starts from when an owner's records are
     * gone. */
    std::vector<std::string> replicaNames() const;

    /**
     * Serve @p name from its held replica blob at degraded fidelity:
     * the replica carries the precise layout only, so every
     * approximate stream decodes zero-filled with concealment on and
     * is counted shed. This is the router's owner-timeout fallback —
     * precise geometry intact, approximate content sacrificed.
     * NotFound when no replica blob is held.
     */
    ArchiveGetResult getFromReplica(const std::string &name) const;

    /**
     * Key-epoch GC scan: verify no record still references a retired
     * key-id. With @p expected_key_id = 0 the newest key-id observed
     * across the archive is the expected epoch (after a completed
     * rekey every encrypted record sits at the same id); a nonzero
     * value pins the expectation. Also flags records whose crypto
     * and policy key-ids disagree.
     */
    KeyEpochReport verifyKeyEpochs(u32 expected_key_id = 0) const;

    /** Sorted names snapshot (scrub-scheduler round robin). */
    std::vector<std::string> videoNames() const;

    /** Directory listing, sorted by name. */
    std::vector<ArchiveVideoStat> stat() const;

    std::size_t videoCount() const;

    const std::string &path() const { return path_; }

  private:
    static constexpr unsigned kLockShards = 16;

    std::mutex &shardFor(const std::string &name) const;

    /** The per-stream scrub body shared by scrub()/scrubVideo();
     * caller holds the directory and shard locks. */
    static void scrubRecordStreams(VideoRecord &record,
                                   const ScrubOptions &options,
                                   u64 video_seed,
                                   ScrubReport &local);

    std::string path_;
    /** Guards the videos map structure; shards guard record cells. */
    mutable std::shared_mutex dirMutex_;
    mutable std::array<std::mutex, kLockShards> shards_;
    Archive archive_;
    /** Expected crc32 of each record's serialized precise meta,
     * anchored at put/open/repair; get() verifies against it
     * (guarded by dirMutex_ like the videos map). */
    std::map<std::string, u32> metaCrc_;
    /** Replica precise-meta blobs held for peer shards. */
    mutable std::mutex replicaMutex_;
    std::map<std::string, Bytes> replicaMeta_;
};

/**
 * Build the archive record for @p prepared (the produce half of the
 * pipeline <-> archive bridge; pure, lock-free, parallel across
 * streams). Exposed for tests and custom stores.
 */
VideoRecord
recordFromPrepared(const PreparedVideo &prepared,
                   const std::optional<EncryptionConfig> &encryption);

} // namespace videoapp

#endif // VIDEOAPP_ARCHIVE_ARCHIVE_SERVICE_H_
