/**
 * @file
 * StreamPolicy: one versioned record of how every stream of a video
 * may be treated — its ECC scheme, its cipher, and how early the
 * serving layer may shed it under load.
 *
 * The paper's central idea is that per-stream importance drives how
 * aggressively each stream may degrade. Before this layer existed
 * that decision was re-derived independently by the ECC assignment,
 * the cipher setup, the container metadata and the server's Partial
 * path. The policy is now computed once at encode/put time from the
 * importance partition and persisted with the record, so every layer
 * consumes the same answer:
 *
 *  - `schemeT` is the stream's BCH correction capability (ascending
 *    scheme t is ascending importance — the assignment is monotone).
 *  - `cipher` says whether the stream is stored encrypted and under
 *    which approximation-compatible mode (selective encryption: only
 *    streams at or above the config's threshold pay for AES).
 *  - `degradeClass` ranks streams from most important (0) to least;
 *    a server shedding at threshold K skips every stream with
 *    degradeClass >= K and serves the reduced-fidelity remainder.
 *
 * Versioning: a policy blob leads with its version. Parsers accept
 * any version <= kStreamPolicyVersion and reject newer ones, so a
 * downgraded reader never misinterprets fields it does not know.
 */

#ifndef VIDEOAPP_POLICY_STREAM_POLICY_H_
#define VIDEOAPP_POLICY_STREAM_POLICY_H_

#include <vector>

#include "crypto/modes.h"

namespace videoapp {

/** Current (and oldest supported) policy record version. */
inline constexpr u16 kStreamPolicyVersion = 1;

/**
 * Per-stream cipher treatment. Plaintext marks a stream selective
 * encryption left in the clear; AesCtr/AesOfb are the two
 * approximation-compatible modes of Section 5; AesLegacy covers
 * records stored under a block mode (ECB/CBC/CFB) — kept decodable,
 * never chosen by the policy builder for new selective records.
 */
enum class StreamCipher : u8
{
    Plaintext = 0,
    AesCtr = 1,
    AesOfb = 2,
    AesLegacy = 3,
};

const char *streamCipherName(StreamCipher cipher);

/** The StreamCipher a CipherMode stores under. */
StreamCipher streamCipherOf(CipherMode mode);

/** How one stream may be treated. */
struct StreamPolicyEntry
{
    /** BCH correction capability t (0 = unprotected). */
    int schemeT = 0;
    StreamCipher cipher = StreamCipher::Plaintext;
    /** Shedding rank: 0 = most important, shed last. */
    u8 degradeClass = 0;

    bool
    operator==(const StreamPolicyEntry &o) const
    {
        return schemeT == o.schemeT && cipher == o.cipher &&
               degradeClass == o.degradeClass;
    }
};

/**
 * The per-video policy record, persisted in the container's precise
 * metadata and replicated with it. Entries are ascending in schemeT
 * (the stream set's natural order) and cover every stream.
 */
struct StreamPolicy
{
    u16 version = kStreamPolicyVersion;
    /** Key-management id the encrypted streams are stored under
     * (0 when every entry is Plaintext). */
    u32 keyId = 0;
    /** The minimum scheme t selective encryption encrypted at put
     * time (0 = everything; recorded for introspection). */
    u8 encryptMinT = 0;
    std::vector<StreamPolicyEntry> entries;

    /** Entry for stream @p scheme_t, nullptr when unknown. */
    const StreamPolicyEntry *entryFor(int scheme_t) const;

    /** True when stream @p scheme_t is stored encrypted. */
    bool encrypts(int scheme_t) const;

    /** True when any entry is stored encrypted. */
    bool anyEncrypted() const;

    /** Shedding rank of stream @p scheme_t (0 when unknown, so an
     * unknown stream is never shed). */
    u8 degradeClassOf(int scheme_t) const;

    bool
    operator==(const StreamPolicy &o) const
    {
        return version == o.version && keyId == o.keyId &&
               encryptMinT == o.encryptMinT && entries == o.entries;
    }
};

/**
 * Build the policy for a stream set at put time. @p scheme_ts are
 * the streams' scheme t values in ascending order (the StreamSet map
 * order). Streams at or above @p encrypt_min_t get @p cipher (pass
 * Plaintext for an unencrypted record); degrade classes rank the
 * streams most-important-first, so the highest-t stream is class 0.
 */
StreamPolicy buildStreamPolicy(const std::vector<int> &scheme_ts,
                               StreamCipher cipher, u32 key_id,
                               u8 encrypt_min_t);

/**
 * Canonical serialization (big-endian, appended to @p out):
 *   u16 version   u32 keyId   u8 encryptMinT
 *   u16 entryCount, then per entry: u8 schemeT, u8 cipher,
 *   u8 degradeClass.
 */
void appendStreamPolicy(Bytes &out, const StreamPolicy &policy);

/**
 * Parse a policy blob at @p pos of @p data, advancing @p pos. Total:
 * returns false (without committing @p pos) on truncation, a version
 * newer than kStreamPolicyVersion, an out-of-range cipher, or
 * entries that are not strictly ascending in schemeT <= 58.
 */
bool parseStreamPolicy(const u8 *data, std::size_t size,
                       std::size_t &pos, StreamPolicy &out);

} // namespace videoapp

#endif // VIDEOAPP_POLICY_STREAM_POLICY_H_
