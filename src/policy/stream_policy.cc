#include "policy/stream_policy.h"

namespace videoapp {

namespace {

/** Mirrors the container's per-stream bound (BCH over 512-bit
 * blocks supports t <= 58). */
constexpr int kMaxSchemeT = 58;

void
appendBe16(Bytes &out, u16 v)
{
    out.push_back(static_cast<u8>(v >> 8));
    out.push_back(static_cast<u8>(v));
}

void
appendBe32(Bytes &out, u32 v)
{
    out.push_back(static_cast<u8>(v >> 24));
    out.push_back(static_cast<u8>(v >> 16));
    out.push_back(static_cast<u8>(v >> 8));
    out.push_back(static_cast<u8>(v));
}

bool
readU8(const u8 *data, std::size_t size, std::size_t &pos, u8 &v)
{
    if (size - pos < 1)
        return false;
    v = data[pos++];
    return true;
}

bool
readBe16(const u8 *data, std::size_t size, std::size_t &pos, u16 &v)
{
    if (size - pos < 2)
        return false;
    v = static_cast<u16>(static_cast<u16>(data[pos]) << 8 |
                         data[pos + 1]);
    pos += 2;
    return true;
}

bool
readBe32(const u8 *data, std::size_t size, std::size_t &pos, u32 &v)
{
    if (size - pos < 4)
        return false;
    v = static_cast<u32>(data[pos]) << 24 |
        static_cast<u32>(data[pos + 1]) << 16 |
        static_cast<u32>(data[pos + 2]) << 8 | data[pos + 3];
    pos += 4;
    return true;
}

} // namespace

const char *
streamCipherName(StreamCipher cipher)
{
    switch (cipher) {
    case StreamCipher::Plaintext: return "plaintext";
    case StreamCipher::AesCtr: return "aes-ctr";
    case StreamCipher::AesOfb: return "aes-ofb";
    case StreamCipher::AesLegacy: return "aes-legacy";
    }
    return "unknown";
}

StreamCipher
streamCipherOf(CipherMode mode)
{
    switch (mode) {
    case CipherMode::CTR: return StreamCipher::AesCtr;
    case CipherMode::OFB: return StreamCipher::AesOfb;
    case CipherMode::ECB:
    case CipherMode::CBC:
    case CipherMode::CFB: return StreamCipher::AesLegacy;
    }
    return StreamCipher::AesLegacy;
}

const StreamPolicyEntry *
StreamPolicy::entryFor(int scheme_t) const
{
    for (const StreamPolicyEntry &e : entries)
        if (e.schemeT == scheme_t)
            return &e;
    return nullptr;
}

bool
StreamPolicy::encrypts(int scheme_t) const
{
    const StreamPolicyEntry *e = entryFor(scheme_t);
    return e != nullptr && e->cipher != StreamCipher::Plaintext;
}

bool
StreamPolicy::anyEncrypted() const
{
    for (const StreamPolicyEntry &e : entries)
        if (e.cipher != StreamCipher::Plaintext)
            return true;
    return false;
}

u8
StreamPolicy::degradeClassOf(int scheme_t) const
{
    const StreamPolicyEntry *e = entryFor(scheme_t);
    return e != nullptr ? e->degradeClass : 0;
}

StreamPolicy
buildStreamPolicy(const std::vector<int> &scheme_ts,
                  StreamCipher cipher, u32 key_id, u8 encrypt_min_t)
{
    StreamPolicy policy;
    policy.encryptMinT = encrypt_min_t;
    const std::size_t n = scheme_ts.size();
    policy.entries.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        StreamPolicyEntry entry;
        entry.schemeT = scheme_ts[i];
        // Ascending t is ascending importance, so the last stream
        // is shed last: rank it class 0, the first stream n-1.
        entry.degradeClass = static_cast<u8>(n - 1 - i);
        entry.cipher = (cipher != StreamCipher::Plaintext &&
                        entry.schemeT >= encrypt_min_t)
                           ? cipher
                           : StreamCipher::Plaintext;
        policy.entries.push_back(entry);
    }
    if (policy.anyEncrypted())
        policy.keyId = key_id;
    return policy;
}

void
appendStreamPolicy(Bytes &out, const StreamPolicy &policy)
{
    appendBe16(out, policy.version);
    appendBe32(out, policy.keyId);
    out.push_back(policy.encryptMinT);
    appendBe16(out, static_cast<u16>(policy.entries.size()));
    for (const StreamPolicyEntry &e : policy.entries) {
        out.push_back(static_cast<u8>(e.schemeT));
        out.push_back(static_cast<u8>(e.cipher));
        out.push_back(e.degradeClass);
    }
}

bool
parseStreamPolicy(const u8 *data, std::size_t size, std::size_t &pos,
                  StreamPolicy &out)
{
    std::size_t p = pos;
    StreamPolicy policy;
    u8 min_t = 0;
    u16 count = 0;
    if (!readBe16(data, size, p, policy.version) ||
        !readBe32(data, size, p, policy.keyId) ||
        !readU8(data, size, p, min_t) ||
        !readBe16(data, size, p, count))
        return false;
    if (policy.version == 0 ||
        policy.version > kStreamPolicyVersion)
        return false;
    policy.encryptMinT = min_t;
    policy.entries.reserve(count);
    int prev_t = -1;
    for (u16 i = 0; i < count; ++i) {
        u8 scheme_t = 0, cipher = 0, degrade = 0;
        if (!readU8(data, size, p, scheme_t) ||
            !readU8(data, size, p, cipher) ||
            !readU8(data, size, p, degrade))
            return false;
        if (scheme_t <= prev_t || scheme_t > kMaxSchemeT ||
            cipher > static_cast<u8>(StreamCipher::AesLegacy))
            return false;
        prev_t = scheme_t;
        StreamPolicyEntry entry;
        entry.schemeT = scheme_t;
        entry.cipher = static_cast<StreamCipher>(cipher);
        entry.degradeClass = degrade;
        policy.entries.push_back(entry);
    }
    pos = p;
    out = std::move(policy);
    return true;
}

} // namespace videoapp
