/**
 * @file
 * Consistent-hash ring with virtual nodes: the cluster tier's
 * placement function. Every shard id contributes `vnodes` points on
 * a 64-bit ring (FNV-1a of "shard/<id>/<v>"); a video name hashes to
 * a point and is owned by the first shard point at or after it
 * (wrapping). Placement is a pure function of (shard ids, vnodes) —
 * every node and every client computes the same owner with no
 * coordination, and adding or removing one shard moves only ~1/N of
 * the names.
 *
 * successors() walks the ring past the owner and returns the next
 * *distinct* shards — the replica set for a name's precise metadata.
 * The approximate cell images are deliberately single-copy (ECC and
 * scrubbing absorb their drift, Section 4); only the small precise
 * records are replicated.
 */

#ifndef VIDEOAPP_CLUSTER_HASH_RING_H_
#define VIDEOAPP_CLUSTER_HASH_RING_H_

#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace videoapp {

/** FNV-1a 64-bit over @p size bytes (placement hashing). */
u64 fnv1a64(const void *data, std::size_t size);

class HashRing
{
  public:
    HashRing() = default;

    /** Build a ring of @p vnodes points per shard in @p shard_ids
     * (duplicates ignored). An empty id list is an empty ring. */
    HashRing(const std::vector<u32> &shard_ids, u32 vnodes);

    bool empty() const { return ring_.empty(); }
    std::size_t shardCount() const { return shardCount_; }
    u32 vnodes() const { return vnodes_; }

    /** The shard owning @p name. Ring must be non-empty. */
    u32 ownerOf(const std::string &name) const;

    /**
     * Up to @p count distinct shards after @p name's owner in ring
     * order, excluding the owner itself — the metadata replica set.
     * Fewer when the ring has too few shards.
     */
    std::vector<u32> successors(const std::string &name,
                                u32 count) const;

  private:
    std::size_t ownerIndex(const std::string &name) const;

    /** Sorted (ring point, shard id); ties broken by shard id. */
    std::vector<std::pair<u64, u32>> ring_;
    std::size_t shardCount_ = 0;
    u32 vnodes_ = 0;
};

/** One name a topology change moves: consistent hashing guarantees
 * the set is minimal (~1/N of the names on an add). */
struct RingMove
{
    std::string name;
    /** Owner under the old ring (where the record lives today). */
    u32 fromShard = 0;
    /** Owner under the new ring (where it must end up). */
    u32 toShard = 0;
};

/**
 * The exact names of @p names whose owner differs between @p from
 * and @p to — the migration engine's work list, and the prediction
 * the resize acceptance check compares actual moves against. Names
 * keep their input order. Empty when either ring is empty.
 */
std::vector<RingMove> ringDiff(const HashRing &from,
                               const HashRing &to,
                               const std::vector<std::string> &names);

} // namespace videoapp

#endif // VIDEOAPP_CLUSTER_HASH_RING_H_
