#include "cluster/cluster_router.h"

#include <algorithm>

#include "common/telemetry.h"

namespace videoapp {

ClusterRouter::ClusterRouter(ClusterRouterConfig config)
    : config_(std::move(config))
{}

bool
ClusterRouter::refresh()
{
    // Known topology first (it usually still has live members),
    // then the bootstrap seeds.
    std::vector<ClusterShard> candidates;
    for (const auto &[id, shard] : shards_)
        candidates.push_back(shard);
    for (const ClusterShard &seed : config_.seeds)
        candidates.push_back(seed);
    for (const ClusterShard &addr : candidates) {
        VappClient client;
        if (!client.connect(addr.host, addr.port))
            continue;
        if (!client.send(Opcode::ClusterInfo, Bytes{}))
            continue;
        auto raw = client.receive();
        if (!raw || raw->kind != static_cast<u8>(Status::Ok))
            continue;
        ClusterInfoResponse info;
        if (!parseClusterInfoResponse(raw->payload, info) ||
            info.status != Status::Ok)
            continue;
        installTopology(info);
        VA_TELEM_COUNT("router.refreshes", 1);
        return true;
    }
    return false;
}

void
ClusterRouter::installTopology(const ClusterInfoResponse &info)
{
    // An epoch change can re-address a surviving shard id (a shard
    // rebuilt at a new port): cached connections would reconnect to
    // the old home forever, so drop them all. Same-epoch installs
    // only shed connections to shards that vanished.
    if (info.epoch != epoch_)
        clients_.clear();
    shards_.clear();
    std::vector<u32> ids;
    ids.reserve(info.shards.size());
    for (const ClusterShard &shard : info.shards) {
        shards_[shard.id] = shard;
        ids.push_back(shard.id);
    }
    ring_ = HashRing(ids, info.vnodes);
    epoch_ = info.epoch;
    for (auto it = clients_.begin(); it != clients_.end();)
        it = shards_.count(it->first) ? std::next(it)
                                      : clients_.erase(it);
}

bool
ClusterRouter::handleWrongEpoch(const Bytes &payload)
{
    VA_TELEM_COUNT("router.wrong_epoch", 1);
    ClusterInfoResponse info;
    if (parseClusterInfoResponse(payload, info) &&
        info.status == Status::WrongEpoch && info.epoch > epoch_) {
        // Monotonic: only ever move forward, so a straggler node's
        // stale refusal can never roll the ring back.
        installTopology(info);
        return true;
    }
    const u64 before = epoch_;
    return refresh() && epoch_ > before;
}

u32
ClusterRouter::ownerOf(const std::string &name) const
{
    return ring_.ownerOf(name);
}

VappClient *
ClusterRouter::clientFor(u32 shard)
{
    auto addr = shards_.find(shard);
    if (addr == shards_.end())
        return nullptr;
    VappClient &client = clients_[shard];
    if (!client.connected()) {
        client.setRetryPolicy(config_.retry);
        if (!client.connect(addr->second.host, addr->second.port))
            return nullptr;
    }
    return &client;
}

std::vector<u32>
ClusterRouter::routeOrder(const std::string &name)
{
    // Owner first; every other shard is a correct fallback entry
    // point because nodes forward mis-targeted requests themselves.
    std::vector<u32> order;
    order.reserve(shards_.size());
    const u32 owner = ring_.ownerOf(name);
    order.push_back(owner);
    for (const auto &[id, shard] : shards_)
        if (id != owner)
            order.push_back(id);
    return order;
}

std::optional<GetFramesResponse>
ClusterRouter::tryReplicaRead(const GetFramesRequest &request)
{
    std::vector<u32> successors =
        ring_.successors(request.name, 1);
    if (successors.empty())
        return std::nullopt;
    VappClient *client = clientFor(successors[0]);
    if (client == nullptr)
        return std::nullopt;
    GetFramesRequest degraded = request;
    degraded.allowReplica = true;
    degraded.ringEpoch = epoch_;
    // kWireFlagForwarded: serve locally off the replica blob; a
    // plain request would bounce back to the unreachable owner.
    std::optional<VappClient::RawResponse> raw;
    if (client->send(Opcode::GetFrames,
                     serializeGetFramesRequest(degraded), nullptr,
                     kWireFlagForwarded))
        raw = client->receive();
    if (!raw)
        return std::nullopt;
    GetFramesResponse response;
    if (!parseGetFramesResponse(raw->payload, response) ||
        (response.status != Status::Ok &&
         response.status != Status::Degraded))
        return std::nullopt;
    VA_TELEM_COUNT("client.replica_reads", 1);
    return response;
}

std::optional<GetFramesResponse>
ClusterRouter::getFrames(const GetFramesRequest &request)
{
    if (!ready() && !refresh())
        return std::nullopt;
    std::vector<u32> tried;
    // A resize mid-request bounces at most a few times (install,
    // re-route, maybe race the next install); beyond that something
    // is wrong and the normal failover budget applies.
    int epoch_bounces = 0;
    std::size_t failovers = 0;
    while (failovers <= shards_.size()) {
        u32 shard = 0;
        bool found = false;
        for (u32 candidate : routeOrder(request.name)) {
            if (std::find(tried.begin(), tried.end(), candidate) ==
                tried.end()) {
                shard = candidate;
                found = true;
                break;
            }
        }
        if (!found)
            break;
        const bool owner_attempt = tried.empty();
        if (VappClient *client = clientFor(shard)) {
            GetFramesRequest stamped = request;
            stamped.ringEpoch = epoch_;
            auto raw = client->callRaw(
                Opcode::GetFrames,
                serializeGetFramesRequest(stamped));
            if (raw) {
                if (raw->kind ==
                    static_cast<u8>(Status::WrongEpoch)) {
                    if (handleWrongEpoch(raw->payload) &&
                        ++epoch_bounces <= 3) {
                        // Fresh ring installed: every shard is a
                        // candidate again under the new placement.
                        tried.clear();
                        continue;
                    }
                } else {
                    GetFramesResponse response;
                    if (parseGetFramesResponse(raw->payload,
                                               response))
                        return response;
                }
            }
        }
        if (owner_attempt) {
            // The owner itself is unreachable: a degraded replica
            // read beats forwarding fallbacks that would only loop
            // back to the same dead owner.
            if (auto replica = tryReplicaRead(request))
                return replica;
        }
        tried.push_back(shard);
        ++failovers;
        VA_TELEM_COUNT("router.failovers", 1);
        refresh();
    }
    return std::nullopt;
}

std::optional<PutResponse>
ClusterRouter::put(const PutRequest &request)
{
    if (!ready() && !refresh())
        return std::nullopt;
    std::vector<u32> tried;
    int epoch_bounces = 0;
    std::size_t failovers = 0;
    while (failovers <= shards_.size()) {
        u32 shard = 0;
        bool found = false;
        for (u32 candidate : routeOrder(request.name)) {
            if (std::find(tried.begin(), tried.end(), candidate) ==
                tried.end()) {
                shard = candidate;
                found = true;
                break;
            }
        }
        if (!found)
            break;
        if (VappClient *client = clientFor(shard)) {
            PutRequest stamped = request;
            stamped.ringEpoch = epoch_;
            auto raw =
                client->callRaw(Opcode::Put,
                                serializePutRequest(stamped));
            if (raw) {
                if (raw->kind ==
                    static_cast<u8>(Status::WrongEpoch)) {
                    if (handleWrongEpoch(raw->payload) &&
                        ++epoch_bounces <= 3) {
                        tried.clear();
                        continue;
                    }
                } else {
                    PutResponse response;
                    if (parsePutResponse(raw->payload, response))
                        return response;
                }
            }
        }
        tried.push_back(shard);
        ++failovers;
        VA_TELEM_COUNT("router.failovers", 1);
        refresh();
    }
    return std::nullopt;
}

std::optional<StatResponse>
ClusterRouter::stat()
{
    if (!ready() && !refresh())
        return std::nullopt;
    StatResponse merged;
    merged.status = Status::Ok;
    bool any = false;
    for (const auto &[id, shard] : shards_) {
        VappClient *client = clientFor(id);
        if (client == nullptr)
            continue;
        if (auto response = client->stat()) {
            any = true;
            merged.videos.insert(merged.videos.end(),
                                 response->videos.begin(),
                                 response->videos.end());
        }
    }
    if (!any)
        return std::nullopt;
    std::sort(merged.videos.begin(), merged.videos.end(),
              [](const ArchiveVideoStat &a,
                 const ArchiveVideoStat &b) {
                  return a.name < b.name;
              });
    return merged;
}

std::optional<ScrubResponse>
ClusterRouter::scrub(const ScrubRequest &request)
{
    if (!ready() && !refresh())
        return std::nullopt;
    ScrubResponse total;
    total.status = Status::Ok;
    bool any = false;
    for (const auto &[id, shard] : shards_) {
        VappClient *client = clientFor(id);
        if (client == nullptr)
            continue;
        if (auto response = client->scrub(request)) {
            any = true;
            total.videos += response->videos;
            total.streams += response->streams;
            total.blocksRead += response->blocksRead;
            total.blocksRewritten += response->blocksRewritten;
            total.bitsCorrected += response->bitsCorrected;
            total.blocksUncorrectable +=
                response->blocksUncorrectable;
            total.streamsMiscorrected +=
                response->streamsMiscorrected;
            total.streamsDamaged += response->streamsDamaged;
        }
    }
    if (!any)
        return std::nullopt;
    return total;
}

} // namespace videoapp
