#include "cluster/cluster_router.h"

#include <algorithm>

#include "common/telemetry.h"

namespace videoapp {

ClusterRouter::ClusterRouter(ClusterRouterConfig config)
    : config_(std::move(config))
{}

bool
ClusterRouter::refresh()
{
    // Known topology first (it usually still has live members),
    // then the bootstrap seeds.
    std::vector<ClusterShard> candidates;
    for (const auto &[id, shard] : shards_)
        candidates.push_back(shard);
    for (const ClusterShard &seed : config_.seeds)
        candidates.push_back(seed);
    for (const ClusterShard &addr : candidates) {
        VappClient client;
        if (!client.connect(addr.host, addr.port))
            continue;
        if (!client.send(Opcode::ClusterInfo, Bytes{}))
            continue;
        auto raw = client.receive();
        if (!raw || raw->kind != static_cast<u8>(Status::Ok))
            continue;
        ClusterInfoResponse info;
        if (!parseClusterInfoResponse(raw->payload, info) ||
            info.status != Status::Ok)
            continue;
        shards_.clear();
        std::vector<u32> ids;
        ids.reserve(info.shards.size());
        for (const ClusterShard &shard : info.shards) {
            shards_[shard.id] = shard;
            ids.push_back(shard.id);
        }
        ring_ = HashRing(ids, info.vnodes);
        epoch_ = info.epoch;
        // Keep warm connections to surviving shards only.
        for (auto it = clients_.begin(); it != clients_.end();)
            it = shards_.count(it->first) ? std::next(it)
                                          : clients_.erase(it);
        VA_TELEM_COUNT("router.refreshes", 1);
        return true;
    }
    return false;
}

u32
ClusterRouter::ownerOf(const std::string &name) const
{
    return ring_.ownerOf(name);
}

VappClient *
ClusterRouter::clientFor(u32 shard)
{
    auto addr = shards_.find(shard);
    if (addr == shards_.end())
        return nullptr;
    VappClient &client = clients_[shard];
    if (!client.connected()) {
        client.setRetryPolicy(config_.retry);
        if (!client.connect(addr->second.host, addr->second.port))
            return nullptr;
    }
    return &client;
}

std::vector<u32>
ClusterRouter::routeOrder(const std::string &name)
{
    // Owner first; every other shard is a correct fallback entry
    // point because nodes forward mis-targeted requests themselves.
    std::vector<u32> order;
    order.reserve(shards_.size());
    const u32 owner = ring_.ownerOf(name);
    order.push_back(owner);
    for (const auto &[id, shard] : shards_)
        if (id != owner)
            order.push_back(id);
    return order;
}

std::optional<GetFramesResponse>
ClusterRouter::getFrames(const GetFramesRequest &request)
{
    if (!ready() && !refresh())
        return std::nullopt;
    std::vector<u32> tried;
    for (std::size_t attempt = 0; attempt <= shards_.size();
         ++attempt) {
        u32 shard = 0;
        bool found = false;
        for (u32 candidate : routeOrder(request.name)) {
            if (std::find(tried.begin(), tried.end(), candidate) ==
                tried.end()) {
                shard = candidate;
                found = true;
                break;
            }
        }
        if (!found)
            break;
        if (VappClient *client = clientFor(shard)) {
            if (auto response = client->getFrames(request))
                return response;
        }
        tried.push_back(shard);
        VA_TELEM_COUNT("router.failovers", 1);
        refresh();
    }
    return std::nullopt;
}

std::optional<PutResponse>
ClusterRouter::put(const PutRequest &request)
{
    if (!ready() && !refresh())
        return std::nullopt;
    std::vector<u32> tried;
    for (std::size_t attempt = 0; attempt <= shards_.size();
         ++attempt) {
        u32 shard = 0;
        bool found = false;
        for (u32 candidate : routeOrder(request.name)) {
            if (std::find(tried.begin(), tried.end(), candidate) ==
                tried.end()) {
                shard = candidate;
                found = true;
                break;
            }
        }
        if (!found)
            break;
        if (VappClient *client = clientFor(shard)) {
            if (auto response = client->put(request))
                return response;
        }
        tried.push_back(shard);
        VA_TELEM_COUNT("router.failovers", 1);
        refresh();
    }
    return std::nullopt;
}

std::optional<StatResponse>
ClusterRouter::stat()
{
    if (!ready() && !refresh())
        return std::nullopt;
    StatResponse merged;
    merged.status = Status::Ok;
    bool any = false;
    for (const auto &[id, shard] : shards_) {
        VappClient *client = clientFor(id);
        if (client == nullptr)
            continue;
        if (auto response = client->stat()) {
            any = true;
            merged.videos.insert(merged.videos.end(),
                                 response->videos.begin(),
                                 response->videos.end());
        }
    }
    if (!any)
        return std::nullopt;
    std::sort(merged.videos.begin(), merged.videos.end(),
              [](const ArchiveVideoStat &a,
                 const ArchiveVideoStat &b) {
                  return a.name < b.name;
              });
    return merged;
}

std::optional<ScrubResponse>
ClusterRouter::scrub(const ScrubRequest &request)
{
    if (!ready() && !refresh())
        return std::nullopt;
    ScrubResponse total;
    total.status = Status::Ok;
    bool any = false;
    for (const auto &[id, shard] : shards_) {
        VappClient *client = clientFor(id);
        if (client == nullptr)
            continue;
        if (auto response = client->scrub(request)) {
            any = true;
            total.videos += response->videos;
            total.streams += response->streams;
            total.blocksRead += response->blocksRead;
            total.blocksRewritten += response->blocksRewritten;
            total.bitsCorrected += response->bitsCorrected;
            total.blocksUncorrectable +=
                response->blocksUncorrectable;
            total.streamsMiscorrected +=
                response->streamsMiscorrected;
            total.streamsDamaged += response->streamsDamaged;
        }
    }
    if (!any)
        return std::nullopt;
    return total;
}

} // namespace videoapp
