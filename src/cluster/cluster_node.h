/**
 * @file
 * ClusterNode: the VappServer-side half of the cluster tier. One
 * instance per shard implements the server's ClusterPeer interface
 * over a HashRing and a set of lazily-connected peer clients:
 *
 *  - placement:   ownerOf() consults the shared ring, so every node
 *                 (and every router) maps a name to the same shard;
 *  - forwarding:  a mis-targeted GET/PUT is relayed to its owner
 *                 with kWireFlagForwarded set (one hop, no loops)
 *                 and the owner's response is echoed verbatim;
 *  - replication: after a PUT, the owner ships the record's precise
 *                 metadata blob (serializeRecordMeta — layout,
 *                 crypto, per-stream shape, *no cells*) to its R
 *                 distinct ring successors via META_PUT;
 *  - repair:      when the owner's precise metadata fails its CRC
 *                 on a GET, fetchReplicaMeta() pulls the blob back
 *                 from whichever successor still holds it.
 *
 * Peer connections are created on first use and cached; a transport
 * failure drops the cached connection and retries once on a fresh
 * one (peers restart, TCP connections rot). All peer I/O is blocking
 * and runs on server worker threads — never the event loop.
 */

#ifndef VIDEOAPP_CLUSTER_CLUSTER_NODE_H_
#define VIDEOAPP_CLUSTER_CLUSTER_NODE_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cluster/hash_ring.h"
#include "server/vapp_client.h"
#include "server/vapp_server.h"

namespace videoapp {

struct ClusterNodeConfig
{
    /** This node's shard id (must appear in shards). */
    u32 selfId = 0;
    /** Every shard of the ring, including this one. May start
     * empty and be installed later via setTopology() — in-process
     * clusters only learn their ephemeral ports after start(). */
    std::vector<ClusterShard> shards;
    /** Precise-metadata replicas per name (distinct successors). */
    u32 replicas = 1;
    /** Virtual nodes per shard on the ring. */
    u32 vnodes = 64;
    /** Ring epoch, bumped on membership change. */
    u64 epoch = 1;
};

class ClusterNode : public ClusterPeer
{
  public:
    /** @p service is this shard's archive (outlives the node). */
    ClusterNode(ArchiveService &service, ClusterNodeConfig config);

    /**
     * (Re)install the membership list and epoch and rebuild the
     * ring. Thread-safe; in-process clusters call this once every
     * shard's ephemeral port is known, and a membership change
     * calls it with a bumped epoch.
     */
    void setTopology(std::vector<ClusterShard> shards, u64 epoch);

    u32 selfShard() const override { return config_.selfId; }
    u32 ownerOf(const std::string &name) const override;
    bool forward(u32 shard, Opcode op, const Bytes &payload,
                 u8 &kind, Bytes &response) override;
    Bytes infoPayload() const override;
    void replicateMeta(const std::string &name) override;
    bool fetchReplicaMeta(const std::string &name,
                          Bytes &meta) override;

    u64 epoch() const;

    /** The metadata replica set the ring assigns @p name. */
    std::vector<u32> successorsOf(const std::string &name) const;

  private:
    /** One cached peer connection; its mutex serializes the
     * request/response exchange (one RPC at a time per peer). */
    struct Peer
    {
        std::mutex mutex;
        VappClient client;
    };

    /** Send (op, payload, flags) to @p shard and read the response;
     * reconnects and retries once on transport failure. */
    bool rpc(u32 shard, Opcode op, const Bytes &payload, u8 flags,
             u8 &kind, Bytes &response);
    Peer *peerFor(u32 shard);

    ArchiveService &service_;
    const ClusterNodeConfig config_;

    /** Guards ring_, addresses_, shards_, epoch_ (setTopology vs
     * per-request placement reads). */
    mutable std::shared_mutex ringMutex_;
    HashRing ring_;
    std::map<u32, ClusterShard> addresses_;
    std::vector<ClusterShard> shards_;
    u64 epoch_ = 0;

    std::mutex peersMutex_;
    std::map<u32, std::unique_ptr<Peer>> peers_;
};

} // namespace videoapp

#endif // VIDEOAPP_CLUSTER_CLUSTER_NODE_H_
