/**
 * @file
 * ClusterNode: the VappServer-side half of the cluster tier. One
 * instance per shard implements the server's ClusterPeer interface
 * over a HashRing and a set of lazily-connected peer clients:
 *
 *  - placement:   ownerOf() consults the shared ring, so every node
 *                 (and every router) maps a name to the same shard;
 *  - forwarding:  a mis-targeted GET/PUT is relayed to its owner
 *                 with kWireFlagForwarded set (one hop, no loops)
 *                 and the owner's response is echoed verbatim;
 *  - replication: after a PUT, the owner ships the record's precise
 *                 metadata blob (serializeRecordMeta — layout,
 *                 crypto, per-stream shape, *no cells*) to its R
 *                 distinct ring successors via META_PUT;
 *  - repair:      when the owner's precise metadata fails its CRC
 *                 on a GET, fetchReplicaMeta() pulls the blob back
 *                 from whichever successor still holds it.
 *
 * Peer connections are created on first use and cached; a transport
 * failure drops the cached connection and retries once on a fresh
 * one (peers restart, TCP connections rot). All peer I/O is blocking
 * and runs on server worker threads — never the event loop.
 */

#ifndef VIDEOAPP_CLUSTER_CLUSTER_NODE_H_
#define VIDEOAPP_CLUSTER_CLUSTER_NODE_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cluster/hash_ring.h"
#include "server/vapp_client.h"
#include "server/vapp_server.h"

namespace videoapp {

struct ClusterNodeConfig
{
    /** This node's shard id (must appear in shards). */
    u32 selfId = 0;
    /** Every shard of the ring, including this one. May start
     * empty and be installed later via setTopology() — in-process
     * clusters only learn their ephemeral ports after start(). */
    std::vector<ClusterShard> shards;
    /** Precise-metadata replicas per name (distinct successors). */
    u32 replicas = 1;
    /** Virtual nodes per shard on the ring. */
    u32 vnodes = 64;
    /** Ring epoch, bumped on membership change. */
    u64 epoch = 1;
};

class ClusterNode : public ClusterPeer
{
  public:
    /** @p service is this shard's archive (outlives the node). */
    ClusterNode(ArchiveService &service, ClusterNodeConfig config);

    /**
     * (Re)install the membership list and epoch and rebuild the
     * ring. Thread-safe; in-process clusters call this once every
     * shard's ephemeral port is known, and a membership change
     * calls it with a bumped epoch.
     */
    void setTopology(std::vector<ClusterShard> shards, u64 epoch);

    u32 selfShard() const override { return config_.selfId; }
    u32 ownerOf(const std::string &name) const override;
    bool forward(u32 shard, Opcode op, const Bytes &payload,
                 u8 &kind, Bytes &response) override;
    Bytes infoPayload() const override;
    void replicateMeta(const std::string &name) override;
    bool fetchReplicaMeta(const std::string &name,
                          Bytes &meta) override;
    u64 ringEpoch() const override { return epoch(); }
    std::optional<ClusterShard> pendingMigrationSource(
        const std::string &name) const override;
    bool pullRecord(const ClusterShard &source,
                    const std::string &name,
                    Bytes &record) override;
    void clearPendingMigration(const std::string &name) override;

    u64 epoch() const;

    /** The metadata replica set the ring assigns @p name. */
    std::vector<u32> successorsOf(const std::string &name) const;

    /**
     * Mark @p name as migrating in from @p source: until the record
     * arrives (push, or pull-through on first GET), a local miss is
     * served by pulling from @p source. The full address is kept —
     * the source may already be off the ring (REMOVE_SHARD).
     */
    void beginMigrationIn(const std::string &name,
                          const ClusterShard &source);

    /** Migration-in entries still pending (tests/introspection). */
    std::size_t migrationInCount() const;

    /** Cached peer connections held (tests: topology pruning). */
    std::size_t cachedPeerCount() const;

    /** This node's archive (the migration engine's local half). */
    ArchiveService &service() { return service_; }

  private:
    /** One cached peer connection; its mutex serializes the
     * request/response exchange (one RPC at a time per peer). */
    struct Peer
    {
        std::mutex mutex;
        VappClient client;
    };

    /** Send (op, payload, flags) to @p shard and read the response;
     * reconnects and retries once on transport failure. The shard's
     * address is re-resolved from the ring on every attempt, so a
     * topology change mid-retry reaches the shard's new home. */
    bool rpc(u32 shard, Opcode op, const Bytes &payload, u8 flags,
             u8 &kind, Bytes &response);
    std::shared_ptr<Peer> peerFor(u32 shard);

    ArchiveService &service_;
    const ClusterNodeConfig config_;

    /** Guards ring_, addresses_, shards_, epoch_ (setTopology vs
     * per-request placement reads). */
    mutable std::shared_mutex ringMutex_;
    HashRing ring_;
    std::map<u32, ClusterShard> addresses_;
    std::vector<ClusterShard> shards_;
    u64 epoch_ = 0;

    /** Cached connections by shard id. shared_ptr: a topology bump
     * prunes entries while an in-flight RPC may still hold one. */
    mutable std::mutex peersMutex_;
    std::map<u32, std::shared_ptr<Peer>> peers_;

    /** Names migrating to this node -> current holder's address. */
    mutable std::mutex migrationMutex_;
    std::map<std::string, ClusterShard> migrationIn_;
};

} // namespace videoapp

#endif // VIDEOAPP_CLUSTER_CLUSTER_NODE_H_
