/**
 * @file
 * ScrubScheduler: continuous background scrubbing under a drift /
 * correction budget. The paper turns the 3-month scrub pass into an
 * operation; at cluster scale that pass must be *paced* so repair
 * work never crowds out serving. The scheduler sweeps a shard's
 * videos round-robin, one scrubVideo() per step, and bounds how much
 * correction work any one interval performs:
 *
 *  - each interval starts the next videos in round-robin order;
 *  - a video is started only while the interval's corrected-bit
 *    total is below `correctionBudget`, and only when its
 *    *predicted* cost (the running max of its past corrections)
 *    still fits; videos that do not fit are carried on an explicit
 *    deferred list and run *first* in the next interval, their
 *    correction cost charged to the interval the work actually runs
 *    in (carriedCorrections() tracks that paid-back debt);
 *  - a video with no history yet predicts zero (the learning sweep
 *    may overshoot once; after it, predictions are exact under a
 *    stationary drift process, which the fixed aging seed models).
 *
 * Between intervals the thread sleeps `intervalMs` (condition
 * variable, so stop() is prompt). After scrubbing a video the
 * optional invalidate hook runs — the serving layer uses it to drop
 * that video's cached decodes, since scrubbing rewrites cells.
 *
 * Telemetry: cluster.scrub.videos / .bits_corrected / .deferrals /
 * .overruns counters and a cluster.scrub.interval_corrections
 * histogram (one sample per completed interval).
 */

#ifndef VIDEOAPP_CLUSTER_SCRUB_SCHEDULER_H_
#define VIDEOAPP_CLUSTER_SCRUB_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "archive/archive_service.h"

namespace videoapp {

struct ScrubSchedulerConfig
{
    /** Sleep between intervals, ms. */
    u32 intervalMs = 100;
    /** Max corrected bits per interval (0 = unbudgeted). */
    u64 correctionBudget = 0;
    /** Raw BER each video is aged at before its scrub — models the
     * drift accumulated since the last visit. */
    double ageRawBer = 0.0;
    /** Aging seed. Fixed across sweeps: repeated scrubs then model
     * a stationary drift process, making per-video cost predictions
     * exact after the learning sweep. */
    u64 seed = 1;
};

class ScrubScheduler
{
  public:
    /** @p service outlives the scheduler. */
    ScrubScheduler(ArchiveService &service,
                   ScrubSchedulerConfig config);
    ~ScrubScheduler();

    ScrubScheduler(const ScrubScheduler &) = delete;
    ScrubScheduler &operator=(const ScrubScheduler &) = delete;

    /** Launch the background thread (at most once). */
    void start();
    /** Stop and join; idempotent, also run by the destructor. */
    void stop();

    /** Run one budgeted interval inline (tests; also the unit the
     * background thread repeats). */
    void runInterval();

    u64 intervalsCompleted() const { return intervals_.load(); }
    u64 videosScrubbed() const { return videos_.load(); }
    u64 bitsCorrected() const { return bits_.load(); }
    /** Videos pushed to a later interval by the budget. */
    u64 deferrals() const { return deferrals_.load(); }
    /** Corrected bits from deferred-then-run videos — work deferred
     * by one interval and charged to the interval that ran it. */
    u64 carriedCorrections() const { return carriedBits_.load(); }
    /** Intervals whose corrections exceeded the budget (at most
     * the learning sweep, under stationary drift). */
    u64 overruns() const { return overruns_.load(); }
    u64 maxIntervalCorrections() const { return maxInterval_.load(); }

  private:
    void run();

    ArchiveService &service_;
    ScrubSchedulerConfig config_;

    std::thread thread_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
    bool started_ = false;

    /** Round-robin cursor: the next name to visit (names snapshot
     * is re-read each interval, so puts/removes are picked up). */
    std::string cursor_;
    /** Running max of each video's corrected bits (cost model). */
    std::map<std::string, u64> costs_;
    /** Videos the budget pushed out of the last interval; they head
     * the next interval's visit order (scheduler thread only, like
     * cursor_ and costs_). */
    std::vector<std::string> deferred_;

    std::atomic<u64> intervals_{0};
    std::atomic<u64> videos_{0};
    std::atomic<u64> bits_{0};
    std::atomic<u64> deferrals_{0};
    std::atomic<u64> carriedBits_{0};
    std::atomic<u64> overruns_{0};
    std::atomic<u64> maxInterval_{0};

  public:
    /** Called after each video's scrub (serving-layer cache drop).
     * Set before start(). */
    std::function<void(const std::string &)> onScrubbed;
};

} // namespace videoapp

#endif // VIDEOAPP_CLUSTER_SCRUB_SCHEDULER_H_
