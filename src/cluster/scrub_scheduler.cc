#include "cluster/scrub_scheduler.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "common/telemetry.h"

namespace videoapp {

ScrubScheduler::ScrubScheduler(ArchiveService &service,
                               ScrubSchedulerConfig config)
    : service_(service), config_(config)
{}

ScrubScheduler::~ScrubScheduler()
{
    stop();
}

void
ScrubScheduler::start()
{
    {
        std::lock_guard lock(mutex_);
        if (started_)
            return;
        started_ = true;
        stopping_ = false;
    }
    thread_ = std::thread([this] { run(); });
}

void
ScrubScheduler::stop()
{
    {
        std::lock_guard lock(mutex_);
        if (!started_)
            return;
        stopping_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
    std::lock_guard lock(mutex_);
    started_ = false;
}

void
ScrubScheduler::run()
{
    for (;;) {
        {
            std::unique_lock lock(mutex_);
            if (cv_.wait_for(
                    lock,
                    std::chrono::milliseconds(config_.intervalMs),
                    [this] { return stopping_; }))
                return;
        }
        runInterval();
    }
}

void
ScrubScheduler::runInterval()
{
    const std::vector<std::string> names = service_.videoNames();
    u64 interval_bits = 0;
    std::size_t visited = 0;
    bool budget_hit = false;
    if (!names.empty()) {
        // Resume the sweep just past the last visited name (names
        // are sorted; puts and removes between intervals are fine).
        std::size_t start = 0;
        if (!cursor_.empty()) {
            auto it = std::upper_bound(names.begin(), names.end(),
                                       cursor_);
            start = it == names.end()
                        ? 0
                        : static_cast<std::size_t>(
                              it - names.begin());
        }
        for (; visited < names.size(); ++visited) {
            const std::string &name =
                names[(start + visited) % names.size()];
            if (config_.correctionBudget > 0) {
                if (interval_bits >= config_.correctionBudget) {
                    budget_hit = true;
                    break;
                }
                auto cost = costs_.find(name);
                const u64 predicted =
                    cost != costs_.end() ? cost->second : 0;
                // Predictive gate — but the interval's first video
                // always runs, so a single oversized video cannot
                // starve the sweep.
                if (interval_bits > 0 &&
                    interval_bits + predicted >
                        config_.correctionBudget) {
                    budget_hit = true;
                    break;
                }
            }
            ScrubOptions options;
            options.ageRawBer = config_.ageRawBer;
            options.seed = config_.seed;
            ScrubReport report =
                service_.scrubVideo(name, options);
            cursor_ = name;
            const u64 corrected = report.cells.bitsCorrected;
            interval_bits += corrected;
            u64 &cost = costs_[name];
            cost = std::max(cost, corrected);
            videos_.fetch_add(1);
            bits_.fetch_add(corrected);
            VA_TELEM_COUNT("cluster.scrub.videos", 1);
            VA_TELEM_COUNT("cluster.scrub.bits_corrected",
                           corrected);
            if (onScrubbed)
                onScrubbed(name);
        }
    }
    if (budget_hit) {
        const u64 deferred =
            static_cast<u64>(names.size() - visited);
        deferrals_.fetch_add(deferred);
        VA_TELEM_COUNT("cluster.scrub.deferrals", deferred);
    }
    if (config_.correctionBudget > 0 &&
        interval_bits > config_.correctionBudget) {
        overruns_.fetch_add(1);
        VA_TELEM_COUNT("cluster.scrub.overruns", 1);
    }
    u64 seen = maxInterval_.load();
    while (interval_bits > seen &&
           !maxInterval_.compare_exchange_weak(seen, interval_bits))
        ;
    intervals_.fetch_add(1);
    VA_TELEM_HIST("cluster.scrub.interval_corrections",
                  interval_bits);
}

} // namespace videoapp
