#include "cluster/scrub_scheduler.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "common/telemetry.h"

namespace videoapp {

ScrubScheduler::ScrubScheduler(ArchiveService &service,
                               ScrubSchedulerConfig config)
    : service_(service), config_(config)
{}

ScrubScheduler::~ScrubScheduler()
{
    stop();
}

void
ScrubScheduler::start()
{
    {
        std::lock_guard lock(mutex_);
        if (started_)
            return;
        started_ = true;
        stopping_ = false;
    }
    thread_ = std::thread([this] { run(); });
}

void
ScrubScheduler::stop()
{
    {
        std::lock_guard lock(mutex_);
        if (!started_)
            return;
        stopping_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
    std::lock_guard lock(mutex_);
    started_ = false;
}

void
ScrubScheduler::run()
{
    for (;;) {
        {
            std::unique_lock lock(mutex_);
            if (cv_.wait_for(
                    lock,
                    std::chrono::milliseconds(config_.intervalMs),
                    [this] { return stopping_; }))
                return;
        }
        runInterval();
    }
}

void
ScrubScheduler::runInterval()
{
    const std::vector<std::string> names = service_.videoNames();
    u64 interval_bits = 0;
    std::size_t visited = 0;
    std::size_t carried_count = 0;
    bool budget_hit = false;
    std::vector<std::string> order;
    if (!names.empty()) {
        // Visit order: videos the budget pushed out of earlier
        // intervals run first — their cost is charged (and the
        // interval histogram attributes it) to the interval the work
        // actually runs in, never retro-charged to the interval that
        // deferred them — then the round-robin sweep resumes just
        // past the last visited name (names are sorted; puts and
        // removes between intervals are fine).
        order.reserve(names.size());
        for (const std::string &name : deferred_)
            if (std::binary_search(names.begin(), names.end(),
                                   name))
                order.push_back(name);
        carried_count = order.size();
        std::size_t start = 0;
        if (!cursor_.empty()) {
            auto it = std::upper_bound(names.begin(), names.end(),
                                       cursor_);
            start = it == names.end()
                        ? 0
                        : static_cast<std::size_t>(
                              it - names.begin());
        }
        for (std::size_t i = 0; i < names.size(); ++i) {
            const std::string &name =
                names[(start + i) % names.size()];
            if (std::find(order.begin(),
                          order.begin() +
                              static_cast<std::ptrdiff_t>(
                                  carried_count),
                          name) !=
                order.begin() +
                    static_cast<std::ptrdiff_t>(carried_count))
                continue; // already queued as carried work
            order.push_back(name);
        }
        for (; visited < order.size(); ++visited) {
            const std::string &name = order[visited];
            if (config_.correctionBudget > 0) {
                if (interval_bits >= config_.correctionBudget) {
                    budget_hit = true;
                    break;
                }
                auto cost = costs_.find(name);
                const u64 predicted =
                    cost != costs_.end() ? cost->second : 0;
                // Predictive gate — but the interval's first video
                // always runs, so a single oversized video cannot
                // starve the sweep.
                if (interval_bits > 0 &&
                    interval_bits + predicted >
                        config_.correctionBudget) {
                    budget_hit = true;
                    break;
                }
            }
            ScrubOptions options;
            options.ageRawBer = config_.ageRawBer;
            options.seed = config_.seed;
            ScrubReport report =
                service_.scrubVideo(name, options);
            const u64 corrected = report.cells.bitsCorrected;
            interval_bits += corrected;
            u64 &cost = costs_[name];
            cost = std::max(cost, corrected);
            videos_.fetch_add(1);
            bits_.fetch_add(corrected);
            VA_TELEM_COUNT("cluster.scrub.videos", 1);
            VA_TELEM_COUNT("cluster.scrub.bits_corrected",
                           corrected);
            if (visited < carried_count) {
                // Deferred-then-run: the debt is paid now, in this
                // interval's budget, and accounted as carried work.
                carriedBits_.fetch_add(corrected);
                VA_TELEM_COUNT("cluster.scrub.carried_bits",
                               corrected);
            } else {
                // Only the sweep advances the cursor; carried
                // revisits are out-of-order and must not warp it.
                cursor_ = name;
            }
            if (onScrubbed)
                onScrubbed(name);
        }
    }
    // Rebuild the carry list: the unreached carried prefix keeps its
    // priority, and the video the budget stopped at joins it — so a
    // deferred video is guaranteed to be the next interval's first
    // candidate instead of waiting on cursor arithmetic.
    std::vector<std::string> next_deferred;
    for (std::size_t i = visited; i < carried_count; ++i)
        next_deferred.push_back(order[i]);
    if (budget_hit && visited >= carried_count) {
        next_deferred.push_back(order[visited]);
        // Deferring consumes the sweep position: the video runs
        // first next interval as carried work, so the sweep must
        // resume past it. Leaving the cursor behind would re-offer
        // the same expensive video every interval and starve the
        // ring behind it.
        cursor_ = order[visited];
    }
    deferred_ = std::move(next_deferred);
    if (budget_hit) {
        const u64 deferred =
            static_cast<u64>(order.size() - visited);
        deferrals_.fetch_add(deferred);
        VA_TELEM_COUNT("cluster.scrub.deferrals", deferred);
    }
    if (config_.correctionBudget > 0 &&
        interval_bits > config_.correctionBudget) {
        overruns_.fetch_add(1);
        VA_TELEM_COUNT("cluster.scrub.overruns", 1);
    }
    u64 seen = maxInterval_.load();
    while (interval_bits > seen &&
           !maxInterval_.compare_exchange_weak(seen, interval_bits))
        ;
    intervals_.fetch_add(1);
    VA_TELEM_HIST("cluster.scrub.interval_corrections",
                  interval_bits);
}

} // namespace videoapp
