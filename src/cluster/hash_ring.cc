#include "cluster/hash_ring.h"

#include <algorithm>

namespace videoapp {

u64
fnv1a64(const void *data, std::size_t size)
{
    const u8 *p = static_cast<const u8 *>(data);
    u64 h = 14695981039346656037ULL;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= p[i];
        h *= 1099511628211ULL;
    }
    return h;
}

namespace {

/**
 * Finalization mix (MurmurHash3 fmix64). Raw FNV-1a has weak
 * avalanche in its trailing bytes: names that differ only in the
 * last character land within a ~2^48 span of each other, so whole
 * name families cluster on one ring segment and resize moves stop
 * tracking the 1/N expectation. Full-width mixing restores uniform
 * point placement.
 */
u64
mix64(u64 h)
{
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return h;
}

u64
vnodePoint(u32 shard_id, u32 vnode)
{
    // Stable textual key: the point layout is part of the placement
    // contract (clients and nodes must agree across builds).
    std::string key = "shard/";
    key += std::to_string(shard_id);
    key += '/';
    key += std::to_string(vnode);
    return mix64(fnv1a64(key.data(), key.size()));
}

} // namespace

HashRing::HashRing(const std::vector<u32> &shard_ids, u32 vnodes)
    : vnodes_(vnodes)
{
    std::vector<u32> ids = shard_ids;
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    shardCount_ = ids.size();
    ring_.reserve(ids.size() * vnodes);
    for (u32 id : ids)
        for (u32 v = 0; v < vnodes; ++v)
            ring_.emplace_back(vnodePoint(id, v), id);
    std::sort(ring_.begin(), ring_.end());
}

std::size_t
HashRing::ownerIndex(const std::string &name) const
{
    const u64 point = mix64(fnv1a64(name.data(), name.size()));
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), point,
        [](const std::pair<u64, u32> &entry, u64 p) {
            return entry.first < p;
        });
    if (it == ring_.end())
        it = ring_.begin(); // wrap past the last point
    return static_cast<std::size_t>(it - ring_.begin());
}

u32
HashRing::ownerOf(const std::string &name) const
{
    return ring_[ownerIndex(name)].second;
}

std::vector<u32>
HashRing::successors(const std::string &name, u32 count) const
{
    std::vector<u32> out;
    if (ring_.empty() || count == 0)
        return out;
    const std::size_t start = ownerIndex(name);
    const u32 owner = ring_[start].second;
    for (std::size_t step = 1;
         step < ring_.size() && out.size() < count; ++step) {
        const u32 id = ring_[(start + step) % ring_.size()].second;
        if (id == owner ||
            std::find(out.begin(), out.end(), id) != out.end())
            continue;
        out.push_back(id);
    }
    return out;
}

std::vector<RingMove>
ringDiff(const HashRing &from, const HashRing &to,
         const std::vector<std::string> &names)
{
    std::vector<RingMove> moves;
    if (from.empty() || to.empty())
        return moves;
    for (const std::string &name : names) {
        const u32 old_owner = from.ownerOf(name);
        const u32 new_owner = to.ownerOf(name);
        if (old_owner != new_owner)
            moves.push_back({name, old_owner, new_owner});
    }
    return moves;
}

} // namespace videoapp
