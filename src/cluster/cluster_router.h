/**
 * @file
 * ClusterRouter: the shard-aware client. It bootstraps from one or
 * more seed addresses, fetches CLUSTER_INFO to learn the ring
 * (topology + epoch), and then routes every request to the shard
 * that owns its name — the common case is a single hop straight to
 * the owner. The placement function is the same HashRing the nodes
 * use, so router and cluster agree by construction.
 *
 * Failure handling: when the owner cannot be reached the router
 * refreshes its topology and falls back to the next live shard —
 * server-side forwarding makes any node a correct (one extra hop)
 * entry point, so availability degrades before correctness does.
 * Per-shard connections use the client retry policy, so transient
 * backpressure (Status::Retry) is absorbed below the router.
 *
 * Live membership: every routed request is stamped with the
 * router's ring epoch. A node that has moved to a newer ring
 * refuses the request with WRONG_EPOCH and the fresh membership in
 * the same round trip; the router installs it (only ever moving its
 * epoch forward) and re-routes, so a resize heals in one bounce
 * with no extra discovery RPC. When the owner times out on a GET,
 * the router additionally asks the name's first metadata-replica
 * successor to serve a degraded best-effort reconstruction
 * (allowReplica) before failing over — counted in
 * "client.replica_reads".
 *
 * stat() aggregates every shard's directory; scrub() broadcasts and
 * sums the reports. Like VappClient, a router instance is
 * single-threaded; concurrency is one router per thread.
 */

#ifndef VIDEOAPP_CLUSTER_CLUSTER_ROUTER_H_
#define VIDEOAPP_CLUSTER_CLUSTER_ROUTER_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cluster/hash_ring.h"
#include "server/vapp_client.h"

namespace videoapp {

struct ClusterRouterConfig
{
    /** Bootstrap addresses (any live shard; usually all of them). */
    std::vector<ClusterShard> seeds;
    /** Retry policy applied to every per-shard connection. */
    RetryPolicy retry;
};

class ClusterRouter
{
  public:
    explicit ClusterRouter(ClusterRouterConfig config);

    /**
     * Fetch CLUSTER_INFO from the first reachable shard (known
     * topology first, then seeds) and rebuild the ring. False when
     * no shard answered. Called automatically by the first routed
     * request and on failover.
     */
    bool refresh();

    bool ready() const { return !ring_.empty(); }
    u64 epoch() const { return epoch_; }
    std::size_t shardCount() const { return shards_.size(); }

    /** The shard the current ring places @p name on (ready()). */
    u32 ownerOf(const std::string &name) const;

    // --- routed calls ---------------------------------------------
    std::optional<GetFramesResponse>
    getFrames(const GetFramesRequest &request);
    std::optional<PutResponse> put(const PutRequest &request);

    // --- cluster-wide calls ---------------------------------------
    /** Directory merged across every shard, sorted by name. */
    std::optional<StatResponse> stat();
    /** Broadcast a scrub pass; reports are summed. */
    std::optional<ScrubResponse> scrub(const ScrubRequest &request);

  private:
    VappClient *clientFor(u32 shard);
    /** Owner first, then every other shard in id order. */
    std::vector<u32> routeOrder(const std::string &name);
    /** Adopt @p info as the current topology. An epoch change drops
     * every cached connection (a rebuilt shard may have moved). */
    void installTopology(const ClusterInfoResponse &info);
    /**
     * React to a WRONG_EPOCH refusal: install the ring the response
     * carries when it is ahead of ours, else refresh. True when the
     * local epoch advanced (re-routing can make progress).
     */
    bool handleWrongEpoch(const Bytes &payload);
    /** Owner-timeout fallback: degraded read off the first metadata
     * replica successor (allowReplica + forwarded flag). */
    std::optional<GetFramesResponse>
    tryReplicaRead(const GetFramesRequest &request);

    ClusterRouterConfig config_;
    HashRing ring_;
    u64 epoch_ = 0;
    std::map<u32, ClusterShard> shards_;
    std::map<u32, VappClient> clients_;
};

} // namespace videoapp

#endif // VIDEOAPP_CLUSTER_CLUSTER_ROUTER_H_
