#include "cluster/cluster_node.h"

#include "common/telemetry.h"

namespace videoapp {

ClusterNode::ClusterNode(ArchiveService &service,
                         ClusterNodeConfig config)
    : service_(service), config_(std::move(config))
{
    setTopology(config_.shards, config_.epoch);
}

void
ClusterNode::setTopology(std::vector<ClusterShard> shards,
                         u64 epoch)
{
    std::vector<u32> ids;
    ids.reserve(shards.size());
    std::map<u32, ClusterShard> addresses;
    for (const ClusterShard &s : shards) {
        ids.push_back(s.id);
        addresses[s.id] = s;
    }
    HashRing ring(ids, config_.vnodes);
    {
        std::unique_lock lock(ringMutex_);
        ring_ = std::move(ring);
        addresses_ = std::move(addresses);
        shards_ = std::move(shards);
        epoch_ = epoch;
    }
    // Prune cached connections to shards the new topology removed or
    // re-addressed: a retry through a stale connection would reach a
    // dead (or wrong) peer. In-flight RPCs holding the shared_ptr
    // finish on the old object and it dies with them.
    std::size_t pruned = 0;
    {
        std::shared_lock ring_lock(ringMutex_);
        std::lock_guard peers(peersMutex_);
        for (auto it = peers_.begin(); it != peers_.end();) {
            auto addr = addresses_.find(it->first);
            if (addr == addresses_.end()) {
                it = peers_.erase(it);
                ++pruned;
            } else {
                ++it;
            }
        }
    }
    if (pruned > 0)
        VA_TELEM_COUNT("cluster.peers_pruned", pruned);
}

u64
ClusterNode::epoch() const
{
    std::shared_lock lock(ringMutex_);
    return epoch_;
}

u32
ClusterNode::ownerOf(const std::string &name) const
{
    std::shared_lock lock(ringMutex_);
    return ring_.ownerOf(name);
}

std::vector<u32>
ClusterNode::successorsOf(const std::string &name) const
{
    std::shared_lock lock(ringMutex_);
    return ring_.successors(name, config_.replicas);
}

Bytes
ClusterNode::infoPayload() const
{
    ClusterInfoResponse info;
    info.status = Status::Ok;
    info.vnodes = config_.vnodes;
    info.replicas = config_.replicas;
    info.selfId = config_.selfId;
    {
        std::shared_lock lock(ringMutex_);
        info.epoch = epoch_;
        info.shards = shards_;
    }
    return serializeClusterInfoResponse(info);
}

std::shared_ptr<ClusterNode::Peer>
ClusterNode::peerFor(u32 shard)
{
    std::lock_guard lock(peersMutex_);
    auto it = peers_.find(shard);
    if (it == peers_.end())
        it = peers_.emplace(shard, std::make_shared<Peer>()).first;
    return it->second;
}

std::size_t
ClusterNode::cachedPeerCount() const
{
    std::lock_guard lock(peersMutex_);
    return peers_.size();
}

bool
ClusterNode::rpc(u32 shard, Opcode op, const Bytes &payload,
                 u8 flags, u8 &kind, Bytes &response)
{
    std::shared_ptr<Peer> peer = peerFor(shard);
    std::lock_guard lock(peer->mutex);
    // Two attempts: a cached connection may have rotted since the
    // last RPC (peer restart); the second runs on a fresh one. The
    // address is re-resolved from the current ring each attempt so a
    // topology bump mid-retry reaches the shard's new home — and a
    // shard the new topology dropped entirely fails cleanly.
    for (int attempt = 0; attempt < 2; ++attempt) {
        ClusterShard addr;
        {
            std::shared_lock ring_lock(ringMutex_);
            auto it = addresses_.find(shard);
            if (it == addresses_.end())
                return false;
            addr = it->second;
        }
        if (!peer->client.connected() &&
            !peer->client.connect(addr.host, addr.port))
            continue;
        std::optional<VappClient::RawResponse> raw;
        if (peer->client.send(op, payload, nullptr, flags))
            raw = peer->client.receive();
        if (raw) {
            kind = raw->kind;
            response = std::move(raw->payload);
            return true;
        }
        peer->client.disconnect();
    }
    return false;
}

bool
ClusterNode::forward(u32 shard, Opcode op, const Bytes &payload,
                     u8 &kind, Bytes &response)
{
    return rpc(shard, op, payload, kWireFlagForwarded, kind,
               response);
}

void
ClusterNode::replicateMeta(const std::string &name)
{
    Bytes meta = service_.exportMeta(name);
    if (meta.empty())
        return;
    MetaPutRequest request;
    request.name = name;
    request.meta = std::move(meta);
    const Bytes payload = serializeMetaPutRequest(request);
    for (u32 shard : successorsOf(name)) {
        if (shard == config_.selfId) {
            // This node double-books as a successor (a forwarded
            // PUT served off-owner): hold the replica locally.
            service_.putReplicaMeta(request.name, request.meta);
            continue;
        }
        u8 kind = 0;
        Bytes response;
        if (rpc(shard, Opcode::MetaPut, payload, 0, kind,
                response) &&
            kind == static_cast<u8>(Status::Ok)) {
            VA_TELEM_COUNT("cluster.replications", 1);
        } else {
            // Best effort: the record still has its local CRC and
            // any other successor's copy; re-shipped on next PUT.
            VA_TELEM_COUNT("cluster.replication_failures", 1);
        }
    }
}

bool
ClusterNode::fetchReplicaMeta(const std::string &name, Bytes &meta)
{
    MetaGetRequest request;
    request.name = name;
    const Bytes payload = serializeMetaGetRequest(request);
    for (u32 shard : successorsOf(name)) {
        if (shard == config_.selfId) {
            Bytes blob = service_.replicaMeta(name);
            if (!blob.empty()) {
                meta = std::move(blob);
                VA_TELEM_COUNT("cluster.meta_fetches", 1);
                return true;
            }
            continue;
        }
        u8 kind = 0;
        Bytes response;
        if (!rpc(shard, Opcode::MetaGet, payload, 0, kind,
                 response) ||
            kind != static_cast<u8>(Status::Ok))
            continue;
        MetaGetResponse parsed;
        if (!parseMetaGetResponse(response, parsed) ||
            parsed.meta.empty())
            continue;
        meta = std::move(parsed.meta);
        VA_TELEM_COUNT("cluster.meta_fetches", 1);
        return true;
    }
    VA_TELEM_COUNT("cluster.meta_fetch_failures", 1);
    return false;
}

// --- live membership ---------------------------------------------------

void
ClusterNode::beginMigrationIn(const std::string &name,
                              const ClusterShard &source)
{
    std::lock_guard lock(migrationMutex_);
    migrationIn_[name] = source;
}

void
ClusterNode::clearPendingMigration(const std::string &name)
{
    std::lock_guard lock(migrationMutex_);
    migrationIn_.erase(name);
}

std::optional<ClusterShard>
ClusterNode::pendingMigrationSource(const std::string &name) const
{
    std::lock_guard lock(migrationMutex_);
    auto it = migrationIn_.find(name);
    if (it == migrationIn_.end())
        return std::nullopt;
    return it->second;
}

std::size_t
ClusterNode::migrationInCount() const
{
    std::lock_guard lock(migrationMutex_);
    return migrationIn_.size();
}

bool
ClusterNode::pullRecord(const ClusterShard &source,
                        const std::string &name, Bytes &record)
{
    // Ephemeral connection, not the peer cache: the source may be a
    // departing shard the topology no longer lists, and bulk record
    // transfers should not monopolize a cached peer's RPC mutex.
    VappClient client;
    if (!client.connect(source.host, source.port)) {
        VA_TELEM_COUNT("cluster.pull_failures", 1);
        return false;
    }
    CellPullRequest request;
    request.name = name;
    std::optional<VappClient::RawResponse> raw;
    if (client.send(Opcode::CellPull,
                    serializeCellPullRequest(request)))
        raw = client.receive();
    if (!raw || raw->kind != static_cast<u8>(Status::Ok)) {
        VA_TELEM_COUNT("cluster.pull_failures", 1);
        return false;
    }
    CellPullResponse parsed;
    if (!parseCellPullResponse(raw->payload, parsed) ||
        parsed.status != Status::Ok || parsed.record.empty()) {
        VA_TELEM_COUNT("cluster.pull_failures", 1);
        return false;
    }
    record = std::move(parsed.record);
    VA_TELEM_COUNT("cluster.pulls", 1);
    return true;
}

} // namespace videoapp
