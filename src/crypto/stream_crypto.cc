#include "crypto/stream_crypto.h"

#include "common/crc32.h"

namespace videoapp {

u32
keyCheckValue(const Bytes &key, const AesBlock &master_iv)
{
    AesBlock check = Aes(key).encryptBlock(master_iv);
    return crc32(check.data(), check.size());
}

StreamCryptor::StreamCryptor(CipherMode mode, const Bytes &key,
                             const AesBlock &master_iv)
    : mode_(mode), aes_(key), masterIv_(master_iv)
{
}

AesBlock
StreamCryptor::deriveIv(u32 stream_id) const
{
    AesBlock seed = masterIv_;
    // Mix the stream id into the low bytes, then run it through the
    // cipher so derived IVs are unrelated without the key.
    seed[12] ^= static_cast<u8>(stream_id >> 24);
    seed[13] ^= static_cast<u8>(stream_id >> 16);
    seed[14] ^= static_cast<u8>(stream_id >> 8);
    seed[15] ^= static_cast<u8>(stream_id);
    return aes_.encryptBlock(seed);
}

Bytes
StreamCryptor::encryptStream(u32 stream_id, const Bytes &plaintext) const
{
    Bytes padded = plaintext;
    if (mode_ == CipherMode::ECB || mode_ == CipherMode::CBC) {
        std::size_t rem = padded.size() % kAesBlockSize;
        if (rem != 0)
            padded.resize(padded.size() + (kAesBlockSize - rem), 0);
    }
    return encrypt(mode_, aes_, deriveIv(stream_id), padded);
}

Bytes
StreamCryptor::decryptStream(u32 stream_id, const Bytes &ciphertext,
                             std::size_t true_size) const
{
    Bytes plain = decrypt(mode_, aes_, deriveIv(stream_id), ciphertext);
    if (plain.size() > true_size)
        plain.resize(true_size);
    return plain;
}

StreamCryptoMeta
StreamCryptor::meta(u32 key_id) const
{
    StreamCryptoMeta meta{mode_, key_id, masterIv_, 0};
    AesBlock check = aes_.encryptBlock(masterIv_);
    meta.keyCheck = crc32(check.data(), check.size());
    return meta;
}

bool
StreamCryptor::approximationCompatible(CipherMode mode)
{
    return mode == CipherMode::OFB || mode == CipherMode::CTR;
}

} // namespace videoapp
