/**
 * @file
 * AES block cipher core (FIPS-197), key sizes 128/192/256.
 *
 * This is the substitution-permutation network ("subperm" in the
 * paper's Figure 7) on which all the studied modes of operation are
 * built. The implementation favours clarity over speed: table-free
 * S-box generation, byte-wise MixColumns. Validated against the
 * FIPS-197 appendix vectors in tests/crypto_test.cc.
 */

#ifndef VIDEOAPP_CRYPTO_AES_H_
#define VIDEOAPP_CRYPTO_AES_H_

#include <array>
#include <cstddef>

#include "common/types.h"

namespace videoapp {

/** AES block size in bytes, fixed by the standard. */
inline constexpr std::size_t kAesBlockSize = 16;

using AesBlock = std::array<u8, kAesBlockSize>;

/**
 * An expanded-key AES instance for one secret key.
 */
class Aes
{
  public:
    /**
     * Expand @p key of length @p key_len bytes (16, 24, or 32).
     * Invalid lengths are treated as 16 bytes (zero padded), keeping
     * construction total; callers validate externally.
     */
    Aes(const u8 *key, std::size_t key_len);

    /** Convenience constructor from a byte vector. */
    explicit Aes(const Bytes &key) : Aes(key.data(), key.size()) {}

    /** Forward cipher: one 16-byte block. */
    AesBlock encryptBlock(const AesBlock &in) const;

    /** Inverse cipher: one 16-byte block. */
    AesBlock decryptBlock(const AesBlock &in) const;

    int rounds() const { return rounds_; }

  private:
    void expandKey(const u8 *key, std::size_t key_len);

    int rounds_ = 10;
    // Up to 15 round keys of 16 bytes for AES-256.
    std::array<u8, 16 * 15> roundKeys_{};
};

} // namespace videoapp

#endif // VIDEOAPP_CRYPTO_AES_H_
