/**
 * @file
 * Block-cipher modes of operation (NIST SP 800-38A) and their
 * error-propagation properties under approximate storage.
 *
 * Section 5 of the paper analyses which modes satisfy the three
 * requirements for encryption over approximate storage:
 *   1. secrecy (identical plaintext blocks must not leak),
 *   2. bit flips in ciphertext must not propagate across blocks,
 *   3. approximating ciphertext must equal approximating plaintext.
 * ECB fails (1); CBC fails (2) and (3); OFB and CTR satisfy all
 * three. `analyzeFlipPropagation` measures this empirically.
 */

#ifndef VIDEOAPP_CRYPTO_MODES_H_
#define VIDEOAPP_CRYPTO_MODES_H_

#include <string>

#include "common/types.h"
#include "crypto/aes.h"

namespace videoapp {

/**
 * The four modes of Figure 7 plus CFB (not analysed in the paper but
 * part of SP 800-38A; it fails requirement #2 like CBC — a flipped
 * ciphertext bit flips the same plaintext bit but garbles the whole
 * next block).
 */
enum class CipherMode { ECB, CBC, OFB, CTR, CFB };

/** Human-readable mode name. */
std::string cipherModeName(CipherMode mode);

/**
 * Encrypt @p plaintext. Input must be a multiple of 16 bytes for
 * ECB/CBC (asserted); OFB/CTR are stream modes and accept any length.
 * @p iv is ignored by ECB.
 */
Bytes encrypt(CipherMode mode, const Aes &aes, const AesBlock &iv,
              const Bytes &plaintext);

/** Inverse of encrypt() with the same mode/key/iv. */
Bytes decrypt(CipherMode mode, const Aes &aes, const AesBlock &iv,
              const Bytes &ciphertext);

/** Result of a single-ciphertext-bit-flip propagation experiment. */
struct FlipPropagation
{
    /** Plaintext bits that changed. */
    std::size_t damagedBits = 0;
    /** 16-byte plaintext blocks containing at least one changed bit. */
    std::size_t damagedBlocks = 0;
    /**
     * True when the damage is confined to exactly the flipped bit —
     * the paper's requirement #2/#3 for approximate storage.
     */
    bool confinedToFlippedBit = false;
};

/**
 * Flip ciphertext bit @p bit_pos, decrypt, and diff against the
 * original plaintext.
 */
FlipPropagation analyzeFlipPropagation(CipherMode mode, const Aes &aes,
                                       const AesBlock &iv,
                                       const Bytes &plaintext,
                                       BitPos bit_pos);

/**
 * Measure ECB's dictionary leakage: the fraction of distinct
 * plaintext block values among repeated blocks that remain
 * distinguishable in the ciphertext (requirement #1). A mode with
 * proper randomisation scores ~0; ECB scores 1.
 */
double equalBlockLeakage(CipherMode mode, const Aes &aes,
                         const AesBlock &iv, const Bytes &plaintext);

} // namespace videoapp

#endif // VIDEOAPP_CRYPTO_MODES_H_
