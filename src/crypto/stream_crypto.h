/**
 * @file
 * Multi-stream encryption for partitioned approximate video storage.
 *
 * Section 5.3: after VideoApp partitions an encoded video into one
 * stream per reliability level, each stream is encrypted separately.
 * The IV for stream i is derived from a single master IV combined
 * with the stream's identifier (here: AES-encrypting the master IV
 * XOR the stream id, so IVs are unique and unpredictable without the
 * key).
 */

#ifndef VIDEOAPP_CRYPTO_STREAM_CRYPTO_H_
#define VIDEOAPP_CRYPTO_STREAM_CRYPTO_H_

#include <vector>

#include "crypto/modes.h"

namespace videoapp {

/**
 * Everything about a stream set's encryption that a storage system
 * must persist to decrypt later — and nothing it must keep secret.
 * The key itself is referred to by an application-assigned id and is
 * supplied again at read time; the master IV is a nonce, safe to
 * store in the clear (per-stream IVs derive from it under the key).
 */
struct StreamCryptoMeta
{
    CipherMode mode = CipherMode::CTR;
    /** Application key-management handle (not the key). */
    u32 keyId = 0;
    AesBlock masterIv{};
    /** Key-check value: crc32 of the master IV encrypted under the
     * record's key. Lets a reader detect a stale or rotated key
     * *before* decoding garbage (a wrong stream key under CTR/OFB
     * yields valid-looking noise). 0 = legacy record, unchecked. */
    u32 keyCheck = 0;
};

/** The key-check value @p key would store for @p master_iv. */
u32 keyCheckValue(const Bytes &key, const AesBlock &master_iv);

/**
 * Encrypts/decrypts a set of independently stored streams under one
 * key and one master IV.
 */
class StreamCryptor
{
  public:
    StreamCryptor(CipherMode mode, const Bytes &key,
                  const AesBlock &master_iv);

    /** Derive the per-stream IV (deterministic in stream_id). */
    AesBlock deriveIv(u32 stream_id) const;

    /**
     * Encrypt one stream. For block modes (ECB/CBC) the stream is
     * zero-padded to a whole number of blocks; the caller must keep
     * the true length (the container header does) and truncate after
     * decryptStream.
     */
    Bytes encryptStream(u32 stream_id, const Bytes &plaintext) const;

    /** Decrypt one stream; @p true_size trims block-mode padding. */
    Bytes decryptStream(u32 stream_id, const Bytes &ciphertext,
                        std::size_t true_size) const;

    CipherMode mode() const { return mode_; }

    /** The master IV the per-stream IVs derive from. */
    const AesBlock &masterIv() const { return masterIv_; }

    /** Serializable metadata for @p key_id, key-check included
     * (see StreamCryptoMeta). */
    StreamCryptoMeta meta(u32 key_id) const;

    /** True for modes satisfying all three §5.1 requirements. */
    static bool approximationCompatible(CipherMode mode);

  private:
    CipherMode mode_;
    Aes aes_;
    AesBlock masterIv_;
};

} // namespace videoapp

#endif // VIDEOAPP_CRYPTO_STREAM_CRYPTO_H_
