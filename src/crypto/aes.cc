#include "crypto/aes.h"

#include <algorithm>
#include <cstring>

namespace videoapp {

namespace {

/** Multiply by x in GF(2^8) with the AES reduction polynomial. */
u8
xtime(u8 a)
{
    return static_cast<u8>((a << 1) ^ ((a & 0x80) ? 0x1B : 0x00));
}

/** Full GF(2^8) multiplication. */
u8
gmul(u8 a, u8 b)
{
    u8 p = 0;
    for (int i = 0; i < 8; ++i) {
        if (b & 1)
            p ^= a;
        a = xtime(a);
        b >>= 1;
    }
    return p;
}

struct SboxTables
{
    std::array<u8, 256> sbox;
    std::array<u8, 256> inv;
};

/**
 * Generate the S-box from first principles: multiplicative inverse in
 * GF(2^8) followed by the FIPS-197 affine transformation. Generating
 * rather than transcribing the table removes a whole class of typo
 * bugs; the result is cross-checked against known vectors in tests.
 */
SboxTables
makeSboxes()
{
    SboxTables t{};
    // Build inverses via the 3-generator exponent/log trick.
    std::array<u8, 256> log{}, alog{};
    u8 x = 1;
    for (int i = 0; i < 255; ++i) {
        alog[i] = x;
        log[x] = static_cast<u8>(i);
        x = static_cast<u8>(x ^ xtime(x)); // multiply by 0x03
    }
    auto inverse = [&](u8 a) -> u8 {
        if (a == 0)
            return 0;
        return alog[(255 - log[a]) % 255];
    };
    for (int i = 0; i < 256; ++i) {
        u8 b = inverse(static_cast<u8>(i));
        u8 s = 0;
        for (int bit = 0; bit < 8; ++bit) {
            u8 v = static_cast<u8>(
                ((b >> bit) & 1) ^ ((b >> ((bit + 4) & 7)) & 1) ^
                ((b >> ((bit + 5) & 7)) & 1) ^
                ((b >> ((bit + 6) & 7)) & 1) ^
                ((b >> ((bit + 7) & 7)) & 1) ^ ((0x63 >> bit) & 1));
            s |= static_cast<u8>(v << bit);
        }
        t.sbox[i] = s;
        t.inv[s] = static_cast<u8>(i);
    }
    return t;
}

const SboxTables &
tables()
{
    static const SboxTables t = makeSboxes();
    return t;
}

void
subBytes(AesBlock &st)
{
    for (auto &b : st)
        b = tables().sbox[b];
}

void
invSubBytes(AesBlock &st)
{
    for (auto &b : st)
        b = tables().inv[b];
}

// State layout: st[r + 4*c] = byte at row r, column c (FIPS order).
void
shiftRows(AesBlock &st)
{
    AesBlock t = st;
    for (int r = 1; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            st[r + 4 * c] = t[r + 4 * ((c + r) & 3)];
}

void
invShiftRows(AesBlock &st)
{
    AesBlock t = st;
    for (int r = 1; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            st[r + 4 * ((c + r) & 3)] = t[r + 4 * c];
}

void
mixColumns(AesBlock &st)
{
    for (int c = 0; c < 4; ++c) {
        u8 a0 = st[4 * c], a1 = st[4 * c + 1];
        u8 a2 = st[4 * c + 2], a3 = st[4 * c + 3];
        st[4 * c] = static_cast<u8>(gmul(a0, 2) ^ gmul(a1, 3) ^ a2 ^ a3);
        st[4 * c + 1] =
            static_cast<u8>(a0 ^ gmul(a1, 2) ^ gmul(a2, 3) ^ a3);
        st[4 * c + 2] =
            static_cast<u8>(a0 ^ a1 ^ gmul(a2, 2) ^ gmul(a3, 3));
        st[4 * c + 3] =
            static_cast<u8>(gmul(a0, 3) ^ a1 ^ a2 ^ gmul(a3, 2));
    }
}

void
invMixColumns(AesBlock &st)
{
    for (int c = 0; c < 4; ++c) {
        u8 a0 = st[4 * c], a1 = st[4 * c + 1];
        u8 a2 = st[4 * c + 2], a3 = st[4 * c + 3];
        st[4 * c] = static_cast<u8>(gmul(a0, 14) ^ gmul(a1, 11) ^
                                    gmul(a2, 13) ^ gmul(a3, 9));
        st[4 * c + 1] = static_cast<u8>(gmul(a0, 9) ^ gmul(a1, 14) ^
                                        gmul(a2, 11) ^ gmul(a3, 13));
        st[4 * c + 2] = static_cast<u8>(gmul(a0, 13) ^ gmul(a1, 9) ^
                                        gmul(a2, 14) ^ gmul(a3, 11));
        st[4 * c + 3] = static_cast<u8>(gmul(a0, 11) ^ gmul(a1, 13) ^
                                        gmul(a2, 9) ^ gmul(a3, 14));
    }
}

void
addRoundKey(AesBlock &st, const u8 *rk)
{
    for (int i = 0; i < 16; ++i)
        st[i] ^= rk[i];
}

} // namespace

Aes::Aes(const u8 *key, std::size_t key_len)
{
    expandKey(key, key_len);
}

void
Aes::expandKey(const u8 *key, std::size_t key_len)
{
    std::size_t nk; // key length in 32-bit words
    switch (key_len) {
      case 24:
        nk = 6;
        rounds_ = 12;
        break;
      case 32:
        nk = 8;
        rounds_ = 14;
        break;
      case 16:
      default:
        nk = 4;
        rounds_ = 10;
        break;
    }

    u8 padded[32] = {};
    std::memcpy(padded, key, std::min(key_len, sizeof(padded)));

    const std::size_t total_words =
        4 * (static_cast<std::size_t>(rounds_) + 1);
    // w[i] stored as 4 bytes at roundKeys_[4*i..4*i+3].
    std::memcpy(roundKeys_.data(), padded, 4 * nk);

    u8 rcon = 1;
    for (std::size_t i = nk; i < total_words; ++i) {
        u8 temp[4];
        std::memcpy(temp, &roundKeys_[4 * (i - 1)], 4);
        if (i % nk == 0) {
            // RotWord + SubWord + Rcon.
            u8 t0 = temp[0];
            temp[0] = static_cast<u8>(tables().sbox[temp[1]] ^ rcon);
            temp[1] = tables().sbox[temp[2]];
            temp[2] = tables().sbox[temp[3]];
            temp[3] = tables().sbox[t0];
            rcon = xtime(rcon);
        } else if (nk > 6 && i % nk == 4) {
            for (auto &b : temp)
                b = tables().sbox[b];
        }
        for (int b = 0; b < 4; ++b)
            roundKeys_[4 * i + b] =
                static_cast<u8>(roundKeys_[4 * (i - nk) + b] ^ temp[b]);
    }
}

AesBlock
Aes::encryptBlock(const AesBlock &in) const
{
    AesBlock st = in;
    addRoundKey(st, &roundKeys_[0]);
    for (int round = 1; round < rounds_; ++round) {
        subBytes(st);
        shiftRows(st);
        mixColumns(st);
        addRoundKey(st, &roundKeys_[16 * round]);
    }
    subBytes(st);
    shiftRows(st);
    addRoundKey(st, &roundKeys_[16 * rounds_]);
    return st;
}

AesBlock
Aes::decryptBlock(const AesBlock &in) const
{
    AesBlock st = in;
    addRoundKey(st, &roundKeys_[16 * rounds_]);
    for (int round = rounds_ - 1; round >= 1; --round) {
        invShiftRows(st);
        invSubBytes(st);
        addRoundKey(st, &roundKeys_[16 * round]);
        invMixColumns(st);
    }
    invShiftRows(st);
    invSubBytes(st);
    addRoundKey(st, &roundKeys_[0]);
    return st;
}

} // namespace videoapp
