#include "crypto/modes.h"

#include <cassert>
#include <cstring>
#include <map>

#include "common/bitstream.h"

namespace videoapp {

namespace {

AesBlock
loadBlock(const Bytes &data, std::size_t offset)
{
    AesBlock b{};
    std::size_t n = std::min(kAesBlockSize, data.size() - offset);
    std::memcpy(b.data(), data.data() + offset, n);
    return b;
}

void
storeBlock(Bytes &out, std::size_t offset, const AesBlock &b,
           std::size_t n)
{
    std::memcpy(out.data() + offset, b.data(), n);
}

void
xorInto(AesBlock &dst, const AesBlock &src)
{
    for (std::size_t i = 0; i < kAesBlockSize; ++i)
        dst[i] ^= src[i];
}

/** Increment the counter block big-endian, as SP 800-38A specifies. */
void
incrementCounter(AesBlock &ctr)
{
    for (int i = kAesBlockSize - 1; i >= 0; --i) {
        if (++ctr[i] != 0)
            break;
    }
}

/** OFB and CTR share the keystream-XOR structure. */
Bytes
keystreamXor(CipherMode mode, const Aes &aes, const AesBlock &iv,
             const Bytes &in)
{
    Bytes out(in.size());
    AesBlock feedback = iv;
    AesBlock counter = iv;
    for (std::size_t off = 0; off < in.size(); off += kAesBlockSize) {
        AesBlock ks;
        if (mode == CipherMode::OFB) {
            feedback = aes.encryptBlock(feedback);
            ks = feedback;
        } else {
            ks = aes.encryptBlock(counter);
            incrementCounter(counter);
        }
        std::size_t n = std::min(kAesBlockSize, in.size() - off);
        for (std::size_t i = 0; i < n; ++i)
            out[off + i] = in[off + i] ^ ks[i];
    }
    return out;
}

} // namespace

std::string
cipherModeName(CipherMode mode)
{
    switch (mode) {
      case CipherMode::ECB: return "ECB";
      case CipherMode::CBC: return "CBC";
      case CipherMode::OFB: return "OFB";
      case CipherMode::CTR: return "CTR";
      case CipherMode::CFB: return "CFB";
    }
    return "?";
}

Bytes
encrypt(CipherMode mode, const Aes &aes, const AesBlock &iv,
        const Bytes &plaintext)
{
    switch (mode) {
      case CipherMode::OFB:
      case CipherMode::CTR:
        return keystreamXor(mode, aes, iv, plaintext);
      case CipherMode::ECB: {
        assert(plaintext.size() % kAesBlockSize == 0);
        Bytes out(plaintext.size());
        for (std::size_t off = 0; off < plaintext.size();
             off += kAesBlockSize) {
            AesBlock c = aes.encryptBlock(loadBlock(plaintext, off));
            storeBlock(out, off, c, kAesBlockSize);
        }
        return out;
      }
      case CipherMode::CBC: {
        assert(plaintext.size() % kAesBlockSize == 0);
        Bytes out(plaintext.size());
        AesBlock prev = iv;
        for (std::size_t off = 0; off < plaintext.size();
             off += kAesBlockSize) {
            AesBlock p = loadBlock(plaintext, off);
            xorInto(p, prev);
            prev = aes.encryptBlock(p);
            storeBlock(out, off, prev, kAesBlockSize);
        }
        return out;
      }
      case CipherMode::CFB: {
        // Full-block CFB: C_i = P_i ^ E(C_{i-1}); stream-capable.
        Bytes out(plaintext.size());
        AesBlock feedback = iv;
        for (std::size_t off = 0; off < plaintext.size();
             off += kAesBlockSize) {
            AesBlock ks = aes.encryptBlock(feedback);
            std::size_t n =
                std::min(kAesBlockSize, plaintext.size() - off);
            for (std::size_t i = 0; i < n; ++i)
                out[off + i] = plaintext[off + i] ^ ks[i];
            feedback = loadBlock(out, off);
        }
        return out;
      }
    }
    return {};
}

Bytes
decrypt(CipherMode mode, const Aes &aes, const AesBlock &iv,
        const Bytes &ciphertext)
{
    switch (mode) {
      case CipherMode::OFB:
      case CipherMode::CTR:
        // Keystream modes are symmetric.
        return keystreamXor(mode, aes, iv, ciphertext);
      case CipherMode::ECB: {
        assert(ciphertext.size() % kAesBlockSize == 0);
        Bytes out(ciphertext.size());
        for (std::size_t off = 0; off < ciphertext.size();
             off += kAesBlockSize) {
            AesBlock p = aes.decryptBlock(loadBlock(ciphertext, off));
            storeBlock(out, off, p, kAesBlockSize);
        }
        return out;
      }
      case CipherMode::CBC: {
        assert(ciphertext.size() % kAesBlockSize == 0);
        Bytes out(ciphertext.size());
        AesBlock prev = iv;
        for (std::size_t off = 0; off < ciphertext.size();
             off += kAesBlockSize) {
            AesBlock c = loadBlock(ciphertext, off);
            AesBlock p = aes.decryptBlock(c);
            xorInto(p, prev);
            storeBlock(out, off, p, kAesBlockSize);
            prev = c;
        }
        return out;
      }
      case CipherMode::CFB: {
        Bytes out(ciphertext.size());
        AesBlock feedback = iv;
        for (std::size_t off = 0; off < ciphertext.size();
             off += kAesBlockSize) {
            AesBlock ks = aes.encryptBlock(feedback);
            std::size_t n =
                std::min(kAesBlockSize, ciphertext.size() - off);
            for (std::size_t i = 0; i < n; ++i)
                out[off + i] = ciphertext[off + i] ^ ks[i];
            feedback = loadBlock(ciphertext, off);
        }
        return out;
      }
    }
    return {};
}

FlipPropagation
analyzeFlipPropagation(CipherMode mode, const Aes &aes,
                       const AesBlock &iv, const Bytes &plaintext,
                       BitPos bit_pos)
{
    FlipPropagation result;
    Bytes cipher = encrypt(mode, aes, iv, plaintext);
    if (bit_pos >= cipher.size() * 8)
        return result;

    flipBit(cipher, bit_pos);
    Bytes damaged = decrypt(mode, aes, iv, cipher);

    assert(damaged.size() == plaintext.size());
    std::size_t changed_bits = 0;
    std::size_t changed_blocks = 0;
    bool block_dirty = false;
    bool only_that_bit = true;
    for (std::size_t i = 0; i < plaintext.size(); ++i) {
        if (i % kAesBlockSize == 0) {
            if (block_dirty)
                ++changed_blocks;
            block_dirty = false;
        }
        u8 diff = plaintext[i] ^ damaged[i];
        if (diff) {
            block_dirty = true;
            for (int b = 0; b < 8; ++b) {
                if (!((diff >> (7 - b)) & 1))
                    continue;
                ++changed_bits;
                if (i * 8 + static_cast<std::size_t>(b) != bit_pos)
                    only_that_bit = false;
            }
        }
    }
    if (block_dirty)
        ++changed_blocks;

    result.damagedBits = changed_bits;
    result.damagedBlocks = changed_blocks;
    result.confinedToFlippedBit = only_that_bit && changed_bits == 1;
    return result;
}

double
equalBlockLeakage(CipherMode mode, const Aes &aes, const AesBlock &iv,
                  const Bytes &plaintext)
{
    assert(plaintext.size() % kAesBlockSize == 0);
    Bytes cipher = encrypt(mode, aes, iv, plaintext);

    // Group plaintext blocks by value; for each group of equal
    // plaintext blocks, count how many produced equal ciphertext.
    std::map<std::array<u8, kAesBlockSize>,
             std::vector<std::array<u8, kAesBlockSize>>> groups;
    for (std::size_t off = 0; off < plaintext.size();
         off += kAesBlockSize) {
        groups[loadBlock(plaintext, off)].push_back(
            loadBlock(cipher, off));
    }

    std::size_t repeated_pairs = 0;
    std::size_t leaked_pairs = 0;
    for (auto &[plain, ciphers] : groups) {
        for (std::size_t i = 0; i < ciphers.size(); ++i) {
            for (std::size_t j = i + 1; j < ciphers.size(); ++j) {
                ++repeated_pairs;
                if (ciphers[i] == ciphers[j])
                    ++leaked_pairs;
            }
        }
    }
    if (repeated_pairs == 0)
        return 0.0;
    return static_cast<double>(leaked_pairs) / repeated_pairs;
}

} // namespace videoapp
