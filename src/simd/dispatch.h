/**
 * @file
 * Runtime ISA selection for the SIMD kernel layer.
 *
 * The active kernel table is chosen once, on first use, from CPUID
 * (highest ISA the machine supports among those compiled in) and the
 * `VIDEOAPP_SIMD` environment variable (`scalar`, `sse2`, `avx2`, or
 * `auto`), which can only lower the level — requesting an ISA the
 * machine lacks falls back to the best supported one with a warning
 * on stderr. Initialization is a C++ magic static, so concurrent
 * first use from many threads is safe (pinned by SimdDispatchRace in
 * tests/simd_test.cc under TSan).
 *
 * Callers in codec/ and storage/ grab the table with simdKernels()
 * and call through its function pointers; tests can fetch a table
 * pinned to a specific level with simdKernelsFor() to compare levels
 * against the scalar oracle regardless of the environment.
 */

#ifndef VIDEOAPP_SIMD_DISPATCH_H_
#define VIDEOAPP_SIMD_DISPATCH_H_

#include "simd/kernels.h"

namespace videoapp {
namespace simd {

/** ISA levels in strictly increasing capability order. */
enum class SimdLevel
{
    Scalar = 0,
    Sse2 = 1,
    Avx2 = 2,
};

/** Stable lowercase name ("scalar", "sse2", "avx2"). */
const char *simdLevelName(SimdLevel level);

/**
 * Highest level both compiled into this binary and supported by the
 * running CPU. Scalar on non-x86 builds.
 */
SimdLevel simdMaxSupportedLevel();

/**
 * Parse a `VIDEOAPP_SIMD` value. Returns true and sets @p out for
 * "scalar"/"sse2"/"avx2"; returns false for anything else (including
 * "auto" and "", which mean no override).
 */
bool simdParseLevel(const char *text, SimdLevel *out);

/** The level serving simdKernels(), fixed at first use. */
SimdLevel simdActiveLevel();

/** The active kernel table (env override + CPUID, cached). */
const SimdKernels &simdKernels();

/**
 * The kernel table pinned to @p level, independent of the active
 * selection. Null when the build machine cannot run that level (or
 * it was not compiled in) — tests use this to enumerate testable
 * levels.
 */
const SimdKernels *simdKernelsFor(SimdLevel level);

/**
 * Record in telemetry which ISA level served @p stage: bumps
 * "simd.<stage>.<level>". Call once per coarse unit of work (per
 * video, per scrub pass), not per kernel invocation.
 */
void simdNoteStage(const char *stage);

} // namespace simd
} // namespace videoapp

#endif // VIDEOAPP_SIMD_DISPATCH_H_
