/**
 * @file
 * SSE2 implementations of the dispatch-table kernels.
 *
 * Compiled with -msse2 on x86 targets (see simd/CMakeLists.txt) and
 * selected at runtime only on machines that support the ISA, so the
 * rest of the binary never executes these instructions. Every
 * function is bit-exact against the scalar oracle in
 * kernels_scalar.cc over the documented input domains; the notable
 * exact-match tricks are called out inline (psadbw for SAD, pavgb
 * for the +1-rounded average, packus for the 0..255 clamp, and
 * sign-extend shifts to reproduce the scalar i16 wrap).
 */

#include "simd/kernels.h"

#if defined(__SSE2__)

#include <emmintrin.h>

#include <cstring>

namespace videoapp {
namespace simd {

namespace {

/** Unaligned 4-byte load/store: u8 rows carry no int alignment, so
 * a direct int* dereference is UB (and trips UBSan). memcpy compiles
 * to the same single mov. */
inline int
loadI32(const u8 *p)
{
    int v;
    std::memcpy(&v, p, sizeof v);
    return v;
}

inline void
storeI32(u8 *p, int v)
{
    std::memcpy(p, &v, sizeof v);
}

/** 4x4 i16 transpose of the low 64 bits of r0..r3. */
inline void
transpose4x4LowI16(__m128i &r0, __m128i &r1, __m128i &r2, __m128i &r3)
{
    __m128i u0 = _mm_unpacklo_epi16(r0, r1); // a0 b0 a1 b1 a2 b2 a3 b3
    __m128i u1 = _mm_unpacklo_epi16(r2, r3); // c0 d0 c1 d1 c2 d2 c3 d3
    __m128i c01 = _mm_unpacklo_epi32(u0, u1); // col0 | col1
    __m128i c23 = _mm_unpackhi_epi32(u0, u1); // col2 | col3
    r0 = c01;
    r1 = _mm_unpackhi_epi64(c01, c01);
    r2 = c23;
    r3 = _mm_unpackhi_epi64(c23, c23);
}

/** 4x4 i32 transpose (full registers). */
inline void
transpose4x4I32(__m128i &r0, __m128i &r1, __m128i &r2, __m128i &r3)
{
    __m128i u0 = _mm_unpacklo_epi32(r0, r1);
    __m128i u1 = _mm_unpackhi_epi32(r0, r1);
    __m128i u2 = _mm_unpacklo_epi32(r2, r3);
    __m128i u3 = _mm_unpackhi_epi32(r2, r3);
    r0 = _mm_unpacklo_epi64(u0, u2);
    r1 = _mm_unpackhi_epi64(u0, u2);
    r2 = _mm_unpacklo_epi64(u1, u3);
    r3 = _mm_unpackhi_epi64(u1, u3);
}

// Quantisation tables, mirrored from the scalar oracle.
constexpr int kMf[6][3] = {
    {13107, 5243, 8066}, {11916, 4660, 7490}, {10082, 4194, 6554},
    {9362, 3647, 5825},  {8192, 3355, 5243},  {7282, 2893, 4559},
};

constexpr int kV[6][3] = {
    {10, 16, 13}, {11, 18, 14}, {13, 20, 16},
    {14, 23, 18}, {16, 25, 20}, {18, 29, 23},
};

void
sse2ForwardQuant4x4(const i16 residual[16], int qp, bool intra,
                    i16 levels[16])
{
    // Core transform in i16 lanes: inputs are residuals of 8-bit
    // samples (|r| <= 255), so every intermediate fits (|W| <=
    // 9180).
    __m128i r0 = _mm_loadl_epi64(
        reinterpret_cast<const __m128i *>(residual + 0));
    __m128i r1 = _mm_loadl_epi64(
        reinterpret_cast<const __m128i *>(residual + 4));
    __m128i r2 = _mm_loadl_epi64(
        reinterpret_cast<const __m128i *>(residual + 8));
    __m128i r3 = _mm_loadl_epi64(
        reinterpret_cast<const __m128i *>(residual + 12));

    // Row pass on element columns (A = element 0 of every row, ...).
    transpose4x4LowI16(r0, r1, r2, r3);
    __m128i s0 = _mm_add_epi16(r0, r3);
    __m128i s1 = _mm_add_epi16(r1, r2);
    __m128i s2 = _mm_sub_epi16(r1, r2);
    __m128i s3 = _mm_sub_epi16(r0, r3);
    __m128i t0 = _mm_add_epi16(s0, s1);
    __m128i t1 = _mm_add_epi16(_mm_add_epi16(s3, s3), s2);
    __m128i t2 = _mm_sub_epi16(s0, s1);
    __m128i t3 = _mm_sub_epi16(s3, _mm_add_epi16(s2, s2));

    // t0..t3 hold tmp columns; transpose back to tmp rows for the
    // column pass, whose outputs are the W rows.
    transpose4x4LowI16(t0, t1, t2, t3);
    s0 = _mm_add_epi16(t0, t3);
    s1 = _mm_add_epi16(t1, t2);
    s2 = _mm_sub_epi16(t1, t2);
    s3 = _mm_sub_epi16(t0, t3);
    __m128i w0 = _mm_add_epi16(s0, s1);
    __m128i w1 = _mm_add_epi16(_mm_add_epi16(s3, s3), s2);
    __m128i w2 = _mm_sub_epi16(s0, s1);
    __m128i w3 = _mm_sub_epi16(s3, _mm_add_epi16(s2, s2));

    // Quantise rows 0/2 (position classes a c a c) and rows 1/3
    // (c b c b) as two 8-lane registers.
    const int rem = qp % 6;
    const int qbits = 15 + qp / 6;
    const int f = (1 << qbits) / (intra ? 3 : 6);
    const i16 mf_a = static_cast<i16>(kMf[rem][0]);
    const i16 mf_b = static_cast<i16>(kMf[rem][1]);
    const i16 mf_c = static_cast<i16>(kMf[rem][2]);
    const __m128i mf_even =
        _mm_setr_epi16(mf_a, mf_c, mf_a, mf_c, mf_a, mf_c, mf_a,
                       mf_c);
    const __m128i mf_odd =
        _mm_setr_epi16(mf_c, mf_b, mf_c, mf_b, mf_c, mf_b, mf_c,
                       mf_b);
    const __m128i fvec = _mm_set1_epi32(f);
    const __m128i shift = _mm_cvtsi32_si128(qbits);
    const __m128i clamp = _mm_set1_epi16(2048);

    auto quant_pair = [&](__m128i w, __m128i mf) {
        __m128i sign = _mm_srai_epi16(w, 15);
        __m128i absw =
            _mm_sub_epi16(_mm_xor_si128(w, sign), sign);
        // 16x16 -> 32 multiply: abs(W) <= 9180 and mf <= 13107, so
        // the unsigned lo/hi halves recombine exactly.
        __m128i lo = _mm_mullo_epi16(absw, mf);
        __m128i hi = _mm_mulhi_epu16(absw, mf);
        __m128i prod_lo = _mm_unpacklo_epi16(lo, hi);
        __m128i prod_hi = _mm_unpackhi_epi16(lo, hi);
        prod_lo =
            _mm_sra_epi32(_mm_add_epi32(prod_lo, fvec), shift);
        prod_hi =
            _mm_sra_epi32(_mm_add_epi32(prod_hi, fvec), shift);
        // Magnitudes are < 4096, so the signed pack cannot saturate.
        __m128i mag = _mm_packs_epi32(prod_lo, prod_hi);
        mag = _mm_min_epi16(mag, clamp);
        return _mm_sub_epi16(_mm_xor_si128(mag, sign), sign);
    };

    __m128i rows02 = _mm_unpacklo_epi64(w0, w2);
    __m128i rows13 = _mm_unpacklo_epi64(w1, w3);
    __m128i q02 = quant_pair(rows02, mf_even);
    __m128i q13 = quant_pair(rows13, mf_odd);

    _mm_storel_epi64(reinterpret_cast<__m128i *>(levels + 0), q02);
    _mm_storel_epi64(reinterpret_cast<__m128i *>(levels + 4), q13);
    _mm_storel_epi64(reinterpret_cast<__m128i *>(levels + 8),
                     _mm_unpackhi_epi64(q02, q02));
    _mm_storel_epi64(reinterpret_cast<__m128i *>(levels + 12),
                     _mm_unpackhi_epi64(q13, q13));
}

void
sse2InverseQuant4x4(const i16 levels[16], int qp, i16 out[16])
{
    const int rem = qp % 6;
    const __m128i shift = _mm_cvtsi32_si128(qp / 6);
    const i16 v_a = static_cast<i16>(kV[rem][0]);
    const i16 v_b = static_cast<i16>(kV[rem][1]);
    const i16 v_c = static_cast<i16>(kV[rem][2]);
    const __m128i v_even =
        _mm_setr_epi16(v_a, v_c, v_a, v_c, v_a, v_c, v_a, v_c);
    const __m128i v_odd =
        _mm_setr_epi16(v_c, v_b, v_c, v_b, v_c, v_b, v_c, v_b);

    // Dequantise into i32 rows (levels * v << shift can exceed i16):
    // load a row, multiply 16x16 -> 32 via mullo/mulhi, then apply
    // the qp/6 left shift in 32-bit lanes.
    auto dequant_row = [&](const i16 *src, __m128i v) {
        __m128i l = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(src));
        __m128i plo = _mm_mullo_epi16(l, v);
        __m128i phi = _mm_mulhi_epi16(l, v);
        return _mm_sll_epi32(_mm_unpacklo_epi16(plo, phi), shift);
    };
    __m128i w0 = dequant_row(levels + 0, v_even);
    __m128i w1 = dequant_row(levels + 4, v_odd);
    __m128i w2 = dequant_row(levels + 8, v_even);
    __m128i w3 = dequant_row(levels + 12, v_odd);

    // Inverse butterfly, identical structure to the scalar core but
    // in i32 lanes. Row pass operates on element columns.
    transpose4x4I32(w0, w1, w2, w3);
    __m128i s0 = _mm_add_epi32(w0, w2);
    __m128i s1 = _mm_sub_epi32(w0, w2);
    __m128i s2 = _mm_sub_epi32(_mm_srai_epi32(w1, 1), w3);
    __m128i s3 = _mm_add_epi32(w1, _mm_srai_epi32(w3, 1));
    __m128i t0 = _mm_add_epi32(s0, s3);
    __m128i t1 = _mm_add_epi32(s1, s2);
    __m128i t2 = _mm_sub_epi32(s1, s2);
    __m128i t3 = _mm_sub_epi32(s0, s3);

    transpose4x4I32(t0, t1, t2, t3);
    s0 = _mm_add_epi32(t0, t2);
    s1 = _mm_sub_epi32(t0, t2);
    s2 = _mm_sub_epi32(_mm_srai_epi32(t1, 1), t3);
    s3 = _mm_add_epi32(t1, _mm_srai_epi32(t3, 1));
    const __m128i round = _mm_set1_epi32(32);
    __m128i o0 = _mm_srai_epi32(
        _mm_add_epi32(_mm_add_epi32(s0, s3), round), 6);
    __m128i o1 = _mm_srai_epi32(
        _mm_add_epi32(_mm_add_epi32(s1, s2), round), 6);
    __m128i o2 = _mm_srai_epi32(
        _mm_add_epi32(_mm_sub_epi32(s1, s2), round), 6);
    __m128i o3 = _mm_srai_epi32(
        _mm_add_epi32(_mm_sub_epi32(s0, s3), round), 6);

    // The scalar oracle casts to i16 (modular wrap). Reproduce the
    // wrap with a sign-extend-from-16 so the signed pack below never
    // saturates differently.
    auto wrap16 = [](__m128i v) {
        return _mm_srai_epi32(_mm_slli_epi32(v, 16), 16);
    };
    __m128i lo = _mm_packs_epi32(wrap16(o0), wrap16(o1));
    __m128i hi = _mm_packs_epi32(wrap16(o2), wrap16(o3));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out + 0), lo);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out + 8), hi);
}

void
sse2Residual4x4(const u8 *src, int src_stride, const u8 *pred,
                int pred_stride, i16 res[16])
{
    const __m128i zero = _mm_setzero_si128();
    for (int y = 0; y < 4; y += 2) {
        __m128i s = _mm_unpacklo_epi32(
            _mm_cvtsi32_si128(loadI32(src + y * src_stride)),
            _mm_cvtsi32_si128(loadI32(src + (y + 1) * src_stride)));
        __m128i p = _mm_unpacklo_epi32(
            _mm_cvtsi32_si128(loadI32(pred + y * pred_stride)),
            _mm_cvtsi32_si128(
                loadI32(pred + (y + 1) * pred_stride)));
        __m128i s16 = _mm_unpacklo_epi8(s, zero);
        __m128i p16 = _mm_unpacklo_epi8(p, zero);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(res + 4 * y),
                         _mm_sub_epi16(s16, p16));
    }
}

void
sse2Reconstruct4x4(const u8 *pred, int pred_stride, const i16 res[16],
                   u8 *dst, int dst_stride)
{
    const __m128i zero = _mm_setzero_si128();
    for (int y = 0; y < 4; y += 2) {
        __m128i p = _mm_unpacklo_epi32(
            _mm_cvtsi32_si128(loadI32(pred + y * pred_stride)),
            _mm_cvtsi32_si128(
                loadI32(pred + (y + 1) * pred_stride)));
        __m128i p16 = _mm_unpacklo_epi8(p, zero);
        __m128i r16 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(res + 4 * y));
        // Saturating add + unsigned pack reproduce clamp(p + r, 0,
        // 255) for every i16 residual.
        __m128i sum = _mm_adds_epi16(p16, r16);
        __m128i packed = _mm_packus_epi16(sum, sum);
        storeI32(dst + y * dst_stride, _mm_cvtsi128_si32(packed));
        storeI32(dst + (y + 1) * dst_stride,
                 _mm_cvtsi128_si32(_mm_srli_si128(packed, 4)));
    }
}

long
sse2SadRect(const u8 *a, int a_stride, const u8 *b, int b_stride,
            int w, int h)
{
    __m128i acc = _mm_setzero_si128();
    long tail = 0;
    for (int y = 0; y < h; ++y) {
        const u8 *pa = a + y * a_stride;
        const u8 *pb = b + y * b_stride;
        int x = 0;
        for (; x + 16 <= w; x += 16) {
            __m128i va = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(pa + x));
            __m128i vb = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(pb + x));
            acc = _mm_add_epi64(acc, _mm_sad_epu8(va, vb));
        }
        if (x + 8 <= w) {
            __m128i va = _mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(pa + x));
            __m128i vb = _mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(pb + x));
            acc = _mm_add_epi64(acc, _mm_sad_epu8(va, vb));
            x += 8;
        }
        if (x + 4 <= w) {
            // Both tails are zero-padded, so the extra lanes
            // contribute |0 - 0| = 0.
            __m128i va = _mm_cvtsi32_si128(loadI32(pa + x));
            __m128i vb = _mm_cvtsi32_si128(loadI32(pb + x));
            acc = _mm_add_epi64(acc, _mm_sad_epu8(va, vb));
            x += 4;
        }
        for (; x < w; ++x)
            tail += pa[x] < pb[x] ? pb[x] - pa[x] : pa[x] - pb[x];
    }
    return tail + _mm_cvtsi128_si64(acc) +
           _mm_cvtsi128_si64(_mm_unpackhi_epi64(acc, acc));
}

long
sse2Sad4x4(const u8 *src, int src_stride, const u8 *pred16)
{
    __m128i s = _mm_setr_epi32(loadI32(src),
                               loadI32(src + src_stride),
                               loadI32(src + 2 * src_stride),
                               loadI32(src + 3 * src_stride));
    __m128i p = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(pred16));
    __m128i sad = _mm_sad_epu8(s, p);
    return _mm_cvtsi128_si64(sad) +
           _mm_cvtsi128_si64(_mm_unpackhi_epi64(sad, sad));
}

void
sse2AverageU8(const u8 *a, const u8 *b, int count, u8 *out)
{
    int i = 0;
    // pavgb computes (a + b + 1) >> 1 exactly.
    for (; i + 16 <= count; i += 16) {
        __m128i va = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(a + i));
        __m128i vb = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(b + i));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + i),
                         _mm_avg_epu8(va, vb));
    }
    for (; i < count; ++i)
        out[i] = static_cast<u8>((a[i] + b[i] + 1) >> 1);
}

/**
 * Six-tap over six i16 registers, staying in i16 (valid when the
 * inputs are 8-bit samples: result range [-2550, 10710]).
 */
inline __m128i
sixTapI16(__m128i a, __m128i b, __m128i c, __m128i d, __m128i e,
          __m128i f)
{
    __m128i centre = _mm_add_epi16(c, d);
    __m128i outer = _mm_add_epi16(b, e);
    // 20x = 16x + 4x, 5x = 4x + x.
    __m128i centre20 = _mm_add_epi16(_mm_slli_epi16(centre, 4),
                                     _mm_slli_epi16(centre, 2));
    __m128i outer5 =
        _mm_add_epi16(_mm_slli_epi16(outer, 2), outer);
    return _mm_add_epi16(_mm_add_epi16(a, f),
                         _mm_sub_epi16(centre20, outer5));
}

void
sse2HalfHRow(const u8 *src, int count, u8 *out)
{
    const __m128i zero = _mm_setzero_si128();
    const __m128i round = _mm_set1_epi16(16);
    int i = 0;
    for (; i + 8 <= count; i += 8) {
        auto load16 = [&](int off) {
            return _mm_unpacklo_epi8(
                _mm_loadl_epi64(reinterpret_cast<const __m128i *>(
                    src + i + off)),
                zero);
        };
        __m128i raw =
            sixTapI16(load16(-2), load16(-1), load16(0), load16(1),
                      load16(2), load16(3));
        __m128i rounded =
            _mm_srai_epi16(_mm_add_epi16(raw, round), 5);
        _mm_storel_epi64(reinterpret_cast<__m128i *>(out + i),
                         _mm_packus_epi16(rounded, rounded));
    }
    for (; i < count; ++i) {
        int raw = src[i - 2] - 5 * src[i - 1] + 20 * src[i] +
                  20 * src[i + 1] - 5 * src[i + 2] + src[i + 3];
        raw = (raw + 16) >> 5;
        out[i] = static_cast<u8>(raw < 0 ? 0 : raw > 255 ? 255 : raw);
    }
}

void
sse2HalfVRowRaw(const u8 *src, int stride, int count, i16 *out)
{
    const __m128i zero = _mm_setzero_si128();
    int i = 0;
    for (; i + 8 <= count; i += 8) {
        auto load16 = [&](int row) {
            return _mm_unpacklo_epi8(
                _mm_loadl_epi64(reinterpret_cast<const __m128i *>(
                    src + row * stride + i)),
                zero);
        };
        __m128i raw =
            sixTapI16(load16(-2), load16(-1), load16(0), load16(1),
                      load16(2), load16(3));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + i), raw);
    }
    for (; i < count; ++i)
        out[i] = static_cast<i16>(
            src[i - 2 * stride] - 5 * src[i - stride] + 20 * src[i] +
            20 * src[i + stride] - 5 * src[i + 2 * stride] +
            src[i + 3 * stride]);
}

void
sse2HalfVRow(const u8 *src, int stride, int count, u8 *out)
{
    const __m128i zero = _mm_setzero_si128();
    const __m128i round = _mm_set1_epi16(16);
    int i = 0;
    for (; i + 8 <= count; i += 8) {
        auto load16 = [&](int row) {
            return _mm_unpacklo_epi8(
                _mm_loadl_epi64(reinterpret_cast<const __m128i *>(
                    src + row * stride + i)),
                zero);
        };
        __m128i raw =
            sixTapI16(load16(-2), load16(-1), load16(0), load16(1),
                      load16(2), load16(3));
        __m128i rounded =
            _mm_srai_epi16(_mm_add_epi16(raw, round), 5);
        _mm_storel_epi64(reinterpret_cast<__m128i *>(out + i),
                         _mm_packus_epi16(rounded, rounded));
    }
    for (; i < count; ++i) {
        int raw = src[i - 2 * stride] - 5 * src[i - stride] +
                  20 * src[i] + 20 * src[i + stride] -
                  5 * src[i + 2 * stride] + src[i + 3 * stride];
        raw = (raw + 16) >> 5;
        out[i] = static_cast<u8>(raw < 0 ? 0 : raw > 255 ? 255 : raw);
    }
}

void
sse2SixTapHRowI16(const i16 *src, int count, u8 *out)
{
    // Inputs are raw vertical half-samples, so the six-tap needs
    // 32-bit accumulation. madd over interleaved neighbour pairs
    // computes two taps per i32 lane.
    const __m128i coeff_ab =
        _mm_setr_epi16(1, -5, 1, -5, 1, -5, 1, -5);
    const __m128i coeff_cd =
        _mm_setr_epi16(20, 20, 20, 20, 20, 20, 20, 20);
    const __m128i coeff_ef =
        _mm_setr_epi16(-5, 1, -5, 1, -5, 1, -5, 1);
    const __m128i round = _mm_set1_epi32(512);
    int i = 0;
    for (; i + 8 <= count; i += 8) {
        __m128i vm2 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(src + i - 2));
        __m128i vm1 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(src + i - 1));
        __m128i v0 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(src + i));
        __m128i v1 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(src + i + 1));
        __m128i v2 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(src + i + 2));
        __m128i v3 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(src + i + 3));

        __m128i ab_lo = _mm_unpacklo_epi16(vm2, vm1);
        __m128i ab_hi = _mm_unpackhi_epi16(vm2, vm1);
        __m128i cd_lo = _mm_unpacklo_epi16(v0, v1);
        __m128i cd_hi = _mm_unpackhi_epi16(v0, v1);
        __m128i ef_lo = _mm_unpacklo_epi16(v2, v3);
        __m128i ef_hi = _mm_unpackhi_epi16(v2, v3);

        __m128i lo = _mm_add_epi32(
            _mm_add_epi32(_mm_madd_epi16(ab_lo, coeff_ab),
                          _mm_madd_epi16(cd_lo, coeff_cd)),
            _mm_madd_epi16(ef_lo, coeff_ef));
        __m128i hi = _mm_add_epi32(
            _mm_add_epi32(_mm_madd_epi16(ab_hi, coeff_ab),
                          _mm_madd_epi16(cd_hi, coeff_cd)),
            _mm_madd_epi16(ef_hi, coeff_ef));
        lo = _mm_srai_epi32(_mm_add_epi32(lo, round), 10);
        hi = _mm_srai_epi32(_mm_add_epi32(hi, round), 10);
        __m128i packed16 = _mm_packs_epi32(lo, hi);
        _mm_storel_epi64(
            reinterpret_cast<__m128i *>(out + i),
            _mm_packus_epi16(packed16, packed16));
    }
    for (; i < count; ++i) {
        int raw = src[i - 2] - 5 * src[i - 1] + 20 * src[i] +
                  20 * src[i + 1] - 5 * src[i + 2] + src[i + 3];
        raw = (raw + 512) >> 10;
        out[i] = static_cast<u8>(raw < 0 ? 0 : raw > 255 ? 255 : raw);
    }
}

void
sse2DeblockEdge(u8 *p1, u8 *p0, u8 *q0, u8 *q1, int count, int alpha,
                int beta, int tc)
{
    // Edges are 4 pixels in this codec; stage through 16-byte
    // buffers so one 8-lane pass covers any count <= 16 without
    // out-of-bounds loads.
    if (count > 16) {
        sse2DeblockEdge(p1, p0, q0, q1, 16, alpha, beta, tc);
        sse2DeblockEdge(p1 + 16, p0 + 16, q0 + 16, q1 + 16,
                        count - 16, alpha, beta, tc);
        return;
    }
    alignas(16) u8 buf_p1[16] = {}, buf_p0[16] = {}, buf_q0[16] = {},
                  buf_q1[16] = {};
    std::memcpy(buf_p1, p1, static_cast<std::size_t>(count));
    std::memcpy(buf_p0, p0, static_cast<std::size_t>(count));
    std::memcpy(buf_q0, q0, static_cast<std::size_t>(count));
    std::memcpy(buf_q1, q1, static_cast<std::size_t>(count));

    const __m128i zero = _mm_setzero_si128();
    __m128i vp1 = _mm_load_si128(
        reinterpret_cast<const __m128i *>(buf_p1));
    __m128i vp0 = _mm_load_si128(
        reinterpret_cast<const __m128i *>(buf_p0));
    __m128i vq0 = _mm_load_si128(
        reinterpret_cast<const __m128i *>(buf_q0));
    __m128i vq1 = _mm_load_si128(
        reinterpret_cast<const __m128i *>(buf_q1));

    // |a - b| for u8 without unsigned compares.
    auto absdiff = [](__m128i a, __m128i b) {
        return _mm_or_si128(_mm_subs_epu8(a, b),
                            _mm_subs_epu8(b, a));
    };
    __m128i d_pq = absdiff(vp0, vq0);
    __m128i d_p = absdiff(vp1, vp0);
    __m128i d_q = absdiff(vq1, vq0);

    auto below16 = [&](__m128i d, int bound, bool lo_half) {
        __m128i d16 = lo_half ? _mm_unpacklo_epi8(d, zero)
                              : _mm_unpackhi_epi8(d, zero);
        return _mm_cmplt_epi16(d16, _mm_set1_epi16(
                                        static_cast<i16>(bound)));
    };

    auto filter_half = [&](bool lo) {
        __m128i p1w = lo ? _mm_unpacklo_epi8(vp1, zero)
                         : _mm_unpackhi_epi8(vp1, zero);
        __m128i p0w = lo ? _mm_unpacklo_epi8(vp0, zero)
                         : _mm_unpackhi_epi8(vp0, zero);
        __m128i q0w = lo ? _mm_unpacklo_epi8(vq0, zero)
                         : _mm_unpackhi_epi8(vq0, zero);
        __m128i q1w = lo ? _mm_unpacklo_epi8(vq1, zero)
                         : _mm_unpackhi_epi8(vq1, zero);

        __m128i mask = _mm_and_si128(
            below16(d_pq, alpha, lo),
            _mm_and_si128(below16(d_p, beta, lo),
                          below16(d_q, beta, lo)));

        __m128i diff = _mm_sub_epi16(q0w, p0w);
        __m128i delta = _mm_add_epi16(
            _mm_slli_epi16(diff, 2),
            _mm_add_epi16(_mm_sub_epi16(p1w, q1w),
                          _mm_set1_epi16(4)));
        delta = _mm_srai_epi16(delta, 3);
        __m128i tcv = _mm_set1_epi16(static_cast<i16>(tc));
        delta = _mm_max_epi16(
            _mm_min_epi16(delta, tcv),
            _mm_sub_epi16(_mm_setzero_si128(), tcv));

        __m128i new_p0 = _mm_add_epi16(p0w, delta);
        __m128i new_q0 = _mm_sub_epi16(q0w, delta);
        // Select filtered lanes, keep the originals elsewhere.
        new_p0 = _mm_or_si128(_mm_and_si128(mask, new_p0),
                              _mm_andnot_si128(mask, p0w));
        new_q0 = _mm_or_si128(_mm_and_si128(mask, new_q0),
                              _mm_andnot_si128(mask, q0w));
        return std::make_pair(new_p0, new_q0);
    };

    auto [p0_lo, q0_lo] = filter_half(true);
    auto [p0_hi, q0_hi] = filter_half(false);
    _mm_store_si128(reinterpret_cast<__m128i *>(buf_p0),
                    _mm_packus_epi16(p0_lo, p0_hi));
    _mm_store_si128(reinterpret_cast<__m128i *>(buf_q0),
                    _mm_packus_epi16(q0_lo, q0_hi));

    std::memcpy(p0, buf_p0, static_cast<std::size_t>(count));
    std::memcpy(q0, buf_q0, static_cast<std::size_t>(count));
}

void
sse2FoldSyndromes(const u8 *codeword, std::size_t nbytes,
                  const u16 *table, std::size_t row, u16 *synd)
{
    for (std::size_t p = 0; p < nbytes; ++p) {
        u8 v = codeword[p];
        if (!v)
            continue;
        const u16 *entry = &table[(p * 256 + v) * row];
        std::size_t i = 0;
        for (; i + 8 <= row; i += 8) {
            __m128i s = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(synd + i));
            __m128i e = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(entry + i));
            _mm_storeu_si128(
                reinterpret_cast<__m128i *>(synd + i),
                _mm_xor_si128(s, e));
        }
        for (; i < row; ++i)
            synd[i] ^= entry[i];
    }
}

} // namespace

bool
fillSse2Kernels(SimdKernels &kernels)
{
    kernels.forwardQuant4x4 = sse2ForwardQuant4x4;
    kernels.inverseQuant4x4 = sse2InverseQuant4x4;
    kernels.residual4x4 = sse2Residual4x4;
    kernels.reconstruct4x4 = sse2Reconstruct4x4;
    kernels.sadRect = sse2SadRect;
    kernels.sad4x4 = sse2Sad4x4;
    kernels.averageU8 = sse2AverageU8;
    kernels.halfHRow = sse2HalfHRow;
    kernels.halfVRowRaw = sse2HalfVRowRaw;
    kernels.halfVRow = sse2HalfVRow;
    kernels.sixTapHRowI16 = sse2SixTapHRowI16;
    kernels.deblockEdge = sse2DeblockEdge;
    kernels.foldSyndromes = sse2FoldSyndromes;
    // chienScan stays scalar at this level: SSE2 has no gather for
    // the antilog lookups.
    return true;
}

} // namespace simd
} // namespace videoapp

#else // !defined(__SSE2__)

namespace videoapp {
namespace simd {

bool
fillSse2Kernels(SimdKernels &)
{
    return false;
}

} // namespace simd
} // namespace videoapp

#endif
