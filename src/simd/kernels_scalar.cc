/**
 * @file
 * Scalar reference implementations of every dispatch-table kernel.
 *
 * These are the oracles: straight ports of the loops that used to
 * live inline in codec/transform.cc, codec/inter.cc,
 * codec/deblock.cc and storage/bch.cc, kept deliberately simple so
 * the SIMD variants have an unambiguous ground truth. Do not
 * "optimise" this file — change the SIMD files instead.
 */

#include "simd/kernels.h"

#include <algorithm>
#include <cstdlib>

namespace videoapp {
namespace simd {

namespace {

inline u8
clampPixel(int v)
{
    return static_cast<u8>(std::clamp(v, 0, 255));
}

inline int
sixTap(int a, int b, int c, int d, int e, int f)
{
    return a - 5 * b + 20 * c + 20 * d - 5 * e + f;
}

// Quantisation multiplier tables of the H.264 reference model
// (mirrored from codec/transform.cc). Rows: qp % 6. Columns:
// coefficient position class (a, b, c).
constexpr int kMf[6][3] = {
    {13107, 5243, 8066}, {11916, 4660, 7490}, {10082, 4194, 6554},
    {9362, 3647, 5825},  {8192, 3355, 5243},  {7282, 2893, 4559},
};

constexpr int kV[6][3] = {
    {10, 16, 13}, {11, 18, 14}, {13, 20, 16},
    {14, 23, 18}, {16, 25, 20}, {18, 29, 23},
};

constexpr int
posClass(int i, int j)
{
    bool even_i = (i & 1) == 0;
    bool even_j = (j & 1) == 0;
    if (even_i && even_j)
        return 0;
    if (!even_i && !even_j)
        return 1;
    return 2;
}

void
scalarForwardQuant4x4(const i16 residual[16], int qp, bool intra,
                      i16 levels[16])
{
    int w[16];
    int tmp[16];
    for (int i = 0; i < 4; ++i) {
        int a = residual[4 * i], b = residual[4 * i + 1];
        int c = residual[4 * i + 2], d = residual[4 * i + 3];
        int s0 = a + d, s1 = b + c, s2 = b - c, s3 = a - d;
        tmp[4 * i] = s0 + s1;
        tmp[4 * i + 1] = 2 * s3 + s2;
        tmp[4 * i + 2] = s0 - s1;
        tmp[4 * i + 3] = s3 - 2 * s2;
    }
    for (int j = 0; j < 4; ++j) {
        int a = tmp[j], b = tmp[4 + j], c = tmp[8 + j],
            d = tmp[12 + j];
        int s0 = a + d, s1 = b + c, s2 = b - c, s3 = a - d;
        w[j] = s0 + s1;
        w[4 + j] = 2 * s3 + s2;
        w[8 + j] = s0 - s1;
        w[12 + j] = s3 - 2 * s2;
    }

    const int qbits = 15 + qp / 6;
    const int f = (1 << qbits) / (intra ? 3 : 6);
    const int rem = qp % 6;
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            int idx = 4 * i + j;
            int mf = kMf[rem][posClass(i, j)];
            int v = w[idx];
            int mag = (std::abs(v) * mf + f) >> qbits;
            if (mag > 2048)
                mag = 2048;
            levels[idx] = static_cast<i16>(v < 0 ? -mag : mag);
        }
    }
}

void
scalarInverseQuant4x4(const i16 levels[16], int qp, i16 out[16])
{
    int w[16];
    const int shift = qp / 6;
    const int rem = qp % 6;
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            int idx = 4 * i + j;
            int v = kV[rem][posClass(i, j)];
            w[idx] = (levels[idx] * v) << shift;
        }
    }
    int tmp[16];
    for (int i = 0; i < 4; ++i) {
        int a = w[4 * i], b = w[4 * i + 1];
        int c = w[4 * i + 2], d = w[4 * i + 3];
        int s0 = a + c, s1 = a - c;
        int s2 = (b >> 1) - d, s3 = b + (d >> 1);
        tmp[4 * i] = s0 + s3;
        tmp[4 * i + 1] = s1 + s2;
        tmp[4 * i + 2] = s1 - s2;
        tmp[4 * i + 3] = s0 - s3;
    }
    for (int j = 0; j < 4; ++j) {
        int a = tmp[j], b = tmp[4 + j], c = tmp[8 + j],
            d = tmp[12 + j];
        int s0 = a + c, s1 = a - c;
        int s2 = (b >> 1) - d, s3 = b + (d >> 1);
        out[j] = static_cast<i16>((s0 + s3 + 32) >> 6);
        out[4 + j] = static_cast<i16>((s1 + s2 + 32) >> 6);
        out[8 + j] = static_cast<i16>((s1 - s2 + 32) >> 6);
        out[12 + j] = static_cast<i16>((s0 - s3 + 32) >> 6);
    }
}

void
scalarResidual4x4(const u8 *src, int src_stride, const u8 *pred,
                  int pred_stride, i16 res[16])
{
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 4; ++x)
            res[4 * y + x] = static_cast<i16>(
                static_cast<int>(src[y * src_stride + x]) -
                static_cast<int>(pred[y * pred_stride + x]));
}

void
scalarReconstruct4x4(const u8 *pred, int pred_stride,
                     const i16 res[16], u8 *dst, int dst_stride)
{
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 4; ++x)
            dst[y * dst_stride + x] = clampPixel(
                static_cast<int>(pred[y * pred_stride + x]) +
                res[4 * y + x]);
}

long
scalarSadRect(const u8 *a, int a_stride, const u8 *b, int b_stride,
              int w, int h)
{
    long sad = 0;
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            sad += std::abs(static_cast<int>(a[y * a_stride + x]) -
                            static_cast<int>(b[y * b_stride + x]));
    return sad;
}

long
scalarSad4x4(const u8 *src, int src_stride, const u8 *pred16)
{
    long sad = 0;
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 4; ++x)
            sad +=
                std::abs(static_cast<int>(src[y * src_stride + x]) -
                         static_cast<int>(pred16[4 * y + x]));
    return sad;
}

void
scalarAverageU8(const u8 *a, const u8 *b, int count, u8 *out)
{
    for (int i = 0; i < count; ++i)
        out[i] = static_cast<u8>((a[i] + b[i] + 1) >> 1);
}

void
scalarHalfHRow(const u8 *src, int count, u8 *out)
{
    for (int i = 0; i < count; ++i) {
        int raw = sixTap(src[i - 2], src[i - 1], src[i], src[i + 1],
                         src[i + 2], src[i + 3]);
        out[i] = clampPixel((raw + 16) >> 5);
    }
}

void
scalarHalfVRowRaw(const u8 *src, int stride, int count, i16 *out)
{
    const u8 *r0 = src - 2 * stride;
    const u8 *r1 = src - stride;
    const u8 *r2 = src;
    const u8 *r3 = src + stride;
    const u8 *r4 = src + 2 * stride;
    const u8 *r5 = src + 3 * stride;
    for (int i = 0; i < count; ++i)
        out[i] = static_cast<i16>(
            sixTap(r0[i], r1[i], r2[i], r3[i], r4[i], r5[i]));
}

void
scalarHalfVRow(const u8 *src, int stride, int count, u8 *out)
{
    const u8 *r0 = src - 2 * stride;
    const u8 *r1 = src - stride;
    const u8 *r2 = src;
    const u8 *r3 = src + stride;
    const u8 *r4 = src + 2 * stride;
    const u8 *r5 = src + 3 * stride;
    for (int i = 0; i < count; ++i) {
        int raw = sixTap(r0[i], r1[i], r2[i], r3[i], r4[i], r5[i]);
        out[i] = clampPixel((raw + 16) >> 5);
    }
}

void
scalarSixTapHRowI16(const i16 *src, int count, u8 *out)
{
    for (int i = 0; i < count; ++i) {
        int raw = sixTap(src[i - 2], src[i - 1], src[i], src[i + 1],
                         src[i + 2], src[i + 3]);
        out[i] = clampPixel((raw + 512) >> 10);
    }
}

void
scalarDeblockEdge(u8 *p1, u8 *p0, u8 *q0, u8 *q1, int count,
                  int alpha, int beta, int tc)
{
    for (int i = 0; i < count; ++i) {
        int vp1 = p1[i], vp0 = p0[i];
        int vq0 = q0[i], vq1 = q1[i];
        if (std::abs(vp0 - vq0) >= alpha ||
            std::abs(vp1 - vp0) >= beta ||
            std::abs(vq1 - vq0) >= beta)
            continue;
        int delta = std::clamp(
            (((vq0 - vp0) * 4 + (vp1 - vq1) + 4) >> 3), -tc, tc);
        p0[i] = clampPixel(vp0 + delta);
        q0[i] = clampPixel(vq0 - delta);
    }
}

void
scalarFoldSyndromes(const u8 *codeword, std::size_t nbytes,
                    const u16 *table, std::size_t row, u16 *synd)
{
    for (std::size_t p = 0; p < nbytes; ++p) {
        u8 v = codeword[p];
        if (!v)
            continue;
        const u16 *entry = &table[(p * 256 + v) * row];
        for (std::size_t i = 0; i < row; ++i)
            synd[i] ^= entry[i];
    }
}

int
scalarChienScan(i32 *acc, const i32 *step, int nterms, u16 constant,
                const i32 *alog, int n, int max_roots, i32 *roots)
{
    constexpr i32 kOrder = 1023;
    int found = 0;
    for (int e = 0; e < n && found < max_roots; ++e) {
        i32 val = constant;
        for (int i = 0; i < nterms; ++i) {
            val ^= alog[acc[i]];
            acc[i] += step[i];
            if (acc[i] >= kOrder)
                acc[i] -= kOrder;
        }
        if (val == 0)
            roots[found++] = e;
    }
    return found;
}

} // namespace

void
fillScalarKernels(SimdKernels &kernels)
{
    kernels.forwardQuant4x4 = scalarForwardQuant4x4;
    kernels.inverseQuant4x4 = scalarInverseQuant4x4;
    kernels.residual4x4 = scalarResidual4x4;
    kernels.reconstruct4x4 = scalarReconstruct4x4;
    kernels.sadRect = scalarSadRect;
    kernels.sad4x4 = scalarSad4x4;
    kernels.averageU8 = scalarAverageU8;
    kernels.halfHRow = scalarHalfHRow;
    kernels.halfVRowRaw = scalarHalfVRowRaw;
    kernels.halfVRow = scalarHalfVRow;
    kernels.sixTapHRowI16 = scalarSixTapHRowI16;
    kernels.deblockEdge = scalarDeblockEdge;
    kernels.foldSyndromes = scalarFoldSyndromes;
    kernels.chienScan = scalarChienScan;
}

} // namespace simd
} // namespace videoapp
