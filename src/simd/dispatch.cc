#include "simd/dispatch.h"

#include "common/telemetry.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace videoapp {
namespace simd {

namespace {

struct ActiveTable
{
    SimdKernels kernels;
    SimdLevel level;
};

/** Compose the table for @p level (overlay up to that level). */
SimdKernels
composeTable(SimdLevel level)
{
    SimdKernels k;
    fillScalarKernels(k);
    if (level >= SimdLevel::Sse2)
        fillSse2Kernels(k);
    if (level >= SimdLevel::Avx2)
        fillAvx2Kernels(k);
    return k;
}

ActiveTable
initActiveTable()
{
    SimdLevel level = simdMaxSupportedLevel();

    const char *env = std::getenv("VIDEOAPP_SIMD");
    SimdLevel requested;
    if (env && simdParseLevel(env, &requested)) {
        if (requested <= level) {
            level = requested;
        } else {
            std::fprintf(stderr,
                         "videoapp: VIDEOAPP_SIMD=%s not supported "
                         "on this machine, using %s\n",
                         env, simdLevelName(level));
        }
    } else if (env && *env && std::strcmp(env, "auto") != 0) {
        std::fprintf(stderr,
                     "videoapp: unknown VIDEOAPP_SIMD=%s "
                     "(expected scalar|sse2|avx2|auto), using %s\n",
                     env, simdLevelName(level));
    }

    telemetry::globalRegistry()
        .counter(std::string("simd.active.") + simdLevelName(level))
        .add(1);
    return {composeTable(level), level};
}

const ActiveTable &
activeTable()
{
    // Magic static: guaranteed one-time thread-safe initialization
    // even when many threads race the first kernel call.
    static const ActiveTable table = initActiveTable();
    return table;
}

} // namespace

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
    case SimdLevel::Sse2:
        return "sse2";
    case SimdLevel::Avx2:
        return "avx2";
    case SimdLevel::Scalar:
    default:
        return "scalar";
    }
}

SimdLevel
simdMaxSupportedLevel()
{
#if defined(__x86_64__) || defined(__i386__)
    if (__builtin_cpu_supports("avx2")) {
        SimdKernels probe;
        fillScalarKernels(probe);
        if (fillAvx2Kernels(probe))
            return SimdLevel::Avx2;
    }
    if (__builtin_cpu_supports("sse2")) {
        SimdKernels probe;
        fillScalarKernels(probe);
        if (fillSse2Kernels(probe))
            return SimdLevel::Sse2;
    }
#endif
    return SimdLevel::Scalar;
}

bool
simdParseLevel(const char *text, SimdLevel *out)
{
    if (!text)
        return false;
    if (std::strcmp(text, "scalar") == 0) {
        *out = SimdLevel::Scalar;
        return true;
    }
    if (std::strcmp(text, "sse2") == 0) {
        *out = SimdLevel::Sse2;
        return true;
    }
    if (std::strcmp(text, "avx2") == 0) {
        *out = SimdLevel::Avx2;
        return true;
    }
    return false;
}

SimdLevel
simdActiveLevel()
{
    return activeTable().level;
}

const SimdKernels &
simdKernels()
{
    return activeTable().kernels;
}

const SimdKernels *
simdKernelsFor(SimdLevel level)
{
    if (level > simdMaxSupportedLevel())
        return nullptr;
    static const SimdKernels scalar = composeTable(SimdLevel::Scalar);
    static const SimdKernels sse2 = composeTable(SimdLevel::Sse2);
    static const SimdKernels avx2 = composeTable(SimdLevel::Avx2);
    switch (level) {
    case SimdLevel::Sse2:
        return &sse2;
    case SimdLevel::Avx2:
        return &avx2;
    case SimdLevel::Scalar:
    default:
        return &scalar;
    }
}

void
simdNoteStage(const char *stage)
{
    telemetry::globalRegistry()
        .counter(std::string("simd.") + stage + "." +
                 simdLevelName(simdActiveLevel()))
        .add(1);
}

} // namespace simd
} // namespace videoapp
