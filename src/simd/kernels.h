/**
 * @file
 * The kernel dispatch table of the SIMD layer: one function pointer
 * per vectorizable hot kernel, filled per ISA level.
 *
 * Every kernel has a scalar implementation (the oracle the SIMD
 * variants are fuzz-tested against, the same role BitVec plays for
 * the packed BCH path) and optional SSE2/AVX2 overrides. Tables are
 * composed by overlay: fillScalarKernels() defines every entry,
 * fillSse2Kernels()/fillAvx2Kernels() replace only the entries they
 * implement, so an ISA file never has to provide the full set and a
 * non-x86 build degrades to all-scalar automatically.
 *
 * Kernel contracts are bit-exact: for identical inputs every level
 * must produce identical outputs (tests/simd_test.cc pins this with
 * randomized fuzz at every level available on the build machine).
 * Pointer arguments are unaligned unless stated; callers guarantee
 * the documented over-read windows (the six-tap kernels read a few
 * samples beyond [0, count)).
 */

#ifndef VIDEOAPP_SIMD_KERNELS_H_
#define VIDEOAPP_SIMD_KERNELS_H_

#include <cstddef>

#include "common/types.h"

namespace videoapp {
namespace simd {

struct SimdKernels
{
    // --- codec: 4x4 transform + quantisation -------------------------
    /** Forward H.264 core transform + quantisation (row major). */
    void (*forwardQuant4x4)(const i16 residual[16], int qp,
                            bool intra, i16 levels[16]);
    /** Dequantisation + inverse transform with >>6 rounding. */
    void (*inverseQuant4x4)(const i16 levels[16], int qp,
                            i16 out[16]);

    // --- codec: residual / reconstruction ----------------------------
    /** res = src - pred over a 4x4 block (strided u8 inputs). */
    void (*residual4x4)(const u8 *src, int src_stride, const u8 *pred,
                        int pred_stride, i16 res[16]);
    /** dst = clip255(pred + res) over a 4x4 block. */
    void (*reconstruct4x4)(const u8 *pred, int pred_stride,
                           const i16 res[16], u8 *dst,
                           int dst_stride);

    // --- codec: motion cost ------------------------------------------
    /** Sum of absolute differences of a w x h rect (strided rows). */
    long (*sadRect)(const u8 *a, int a_stride, const u8 *b,
                    int b_stride, int w, int h);
    /** SAD of a strided 4x4 source block vs 16 contiguous bytes. */
    long (*sad4x4)(const u8 *src, int src_stride, const u8 *pred16);
    /** out[i] = (a[i] + b[i] + 1) >> 1 (bi-prediction average). */
    void (*averageU8)(const u8 *a, const u8 *b, int count, u8 *out);

    // --- codec: quarter-pel interpolation ----------------------------
    /**
     * Horizontal half-sample row: out[i] = clip255((sixTap(src[i-2
     * .. i+3]) + 16) >> 5). Reads src[-2 .. count+2].
     */
    void (*halfHRow)(const u8 *src, int count, u8 *out);
    /**
     * Vertical half-sample row at full precision: out[i] =
     * sixTap(src[i - 2*stride .. i + 3*stride]) with no rounding or
     * clipping (feeds the centre position's horizontal pass).
     */
    void (*halfVRowRaw)(const u8 *src, int stride, int count,
                        i16 *out);
    /** Vertical half-sample row, rounded: clip255((raw + 16) >> 5). */
    void (*halfVRow)(const u8 *src, int stride, int count, u8 *out);
    /**
     * Centre (j) position: out[i] = clip255((sixTap(src[i-2 ..
     * i+3]) + 512) >> 10) over raw i16 vertical half-samples, with
     * 32-bit accumulation. Reads src[-2 .. count+2].
     */
    void (*sixTapHRowI16)(const i16 *src, int count, u8 *out);

    // --- codec: deblocking -------------------------------------------
    /**
     * Filter @p count pixels of one edge. p1/p0 are the two sample
     * rows on the p side (p0 adjacent to the edge), q0/q1 the q
     * side; p0/q0 are updated in place. Matches the scalar
     * filterEdge body: a lane is filtered only when |p0-q0| < alpha,
     * |p1-p0| < beta and |q1-q0| < beta.
     */
    void (*deblockEdge)(u8 *p1, u8 *p0, u8 *q0, u8 *q1, int count,
                        int alpha, int beta, int tc);

    // --- storage: BCH ------------------------------------------------
    /**
     * Fold a packed codeword into the 2t syndromes: for every
     * nonzero byte p, synd[i] ^= table[(p * 256 + cw[p]) * row + i].
     */
    void (*foldSyndromes)(const u8 *codeword, std::size_t nbytes,
                          const u16 *table, std::size_t row,
                          u16 *synd);
    /**
     * Log-domain Chien search over positions e = 0 .. n-1: at each
     * position the locator value is constant XOR alog[acc[i]] over
     * all terms, then acc[i] advances by step[i] mod 1023. Roots
     * (position exponents e) are appended to @p roots until
     * @p max_roots are found. @p alog holds alpha^0..alpha^1022 as
     * i32 plus at least one padding entry. Returns the root count.
     */
    int (*chienScan)(i32 *acc, const i32 *step, int nterms,
                     u16 constant, const i32 *alog, int n,
                     int max_roots, i32 *roots);
};

/** Fill every entry with the scalar reference implementation. */
void fillScalarKernels(SimdKernels &kernels);

/**
 * Overlay the SSE2 implementations. Returns false (table untouched)
 * when the build carries no SSE2 code (non-x86 target).
 */
bool fillSse2Kernels(SimdKernels &kernels);

/** Overlay the AVX2 implementations; false when not compiled in. */
bool fillAvx2Kernels(SimdKernels &kernels);

} // namespace simd
} // namespace videoapp

#endif // VIDEOAPP_SIMD_KERNELS_H_
