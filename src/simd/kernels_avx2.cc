/**
 * @file
 * AVX2 implementations of the dispatch-table kernels.
 *
 * Compiled with -mavx2 and only ever called after a runtime CPUID
 * check. AVX2 overlays the row-oriented kernels where the doubled
 * lane width pays (SAD, interpolation rows, averages, syndrome
 * folds) and adds the gather-based Chien search; the 4x4 block
 * kernels keep their SSE2 forms, which the overlay composition in
 * dispatch.cc inherits automatically.
 */

#include "simd/kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

namespace videoapp {
namespace simd {

namespace {

/** Unaligned 4-byte load: u8 rows carry no int alignment, so a
 * direct int* dereference is UB (and trips UBSan). memcpy compiles
 * to the same single mov. */
inline int
loadI32(const u8 *p)
{
    int v;
    std::memcpy(&v, p, sizeof v);
    return v;
}

inline long
hsum64(__m256i v)
{
    __m128i lo = _mm256_castsi256_si128(v);
    __m128i hi = _mm256_extracti128_si256(v, 1);
    __m128i sum = _mm_add_epi64(lo, hi);
    return _mm_cvtsi128_si64(sum) +
           _mm_cvtsi128_si64(_mm_unpackhi_epi64(sum, sum));
}

long
avx2SadRect(const u8 *a, int a_stride, const u8 *b, int b_stride,
            int w, int h)
{
    __m256i acc = _mm256_setzero_si256();
    __m128i acc128 = _mm_setzero_si128();
    long tail = 0;
    int y = 0;
    if (w == 16) {
        // Two 16-pixel rows per 256-bit op, the dominant shape
        // (whole-macroblock SAD in motion search).
        for (; y + 2 <= h; y += 2) {
            __m256i va = _mm256_inserti128_si256(
                _mm256_castsi128_si256(_mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(
                        a + y * a_stride))),
                _mm_loadu_si128(reinterpret_cast<const __m128i *>(
                    a + (y + 1) * a_stride)),
                1);
            __m256i vb = _mm256_inserti128_si256(
                _mm256_castsi128_si256(_mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(
                        b + y * b_stride))),
                _mm_loadu_si128(reinterpret_cast<const __m128i *>(
                    b + (y + 1) * b_stride)),
                1);
            acc = _mm256_add_epi64(acc, _mm256_sad_epu8(va, vb));
        }
    }
    for (; y < h; ++y) {
        const u8 *pa = a + y * a_stride;
        const u8 *pb = b + y * b_stride;
        int x = 0;
        for (; x + 32 <= w; x += 32) {
            __m256i va = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(pa + x));
            __m256i vb = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(pb + x));
            acc = _mm256_add_epi64(acc, _mm256_sad_epu8(va, vb));
        }
        if (x + 16 <= w) {
            __m128i va = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(pa + x));
            __m128i vb = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(pb + x));
            acc128 = _mm_add_epi64(acc128, _mm_sad_epu8(va, vb));
            x += 16;
        }
        if (x + 8 <= w) {
            __m128i va = _mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(pa + x));
            __m128i vb = _mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(pb + x));
            acc128 = _mm_add_epi64(acc128, _mm_sad_epu8(va, vb));
            x += 8;
        }
        if (x + 4 <= w) {
            __m128i va = _mm_cvtsi32_si128(loadI32(pa + x));
            __m128i vb = _mm_cvtsi32_si128(loadI32(pb + x));
            acc128 = _mm_add_epi64(acc128, _mm_sad_epu8(va, vb));
            x += 4;
        }
        for (; x < w; ++x)
            tail += pa[x] < pb[x] ? pb[x] - pa[x] : pa[x] - pb[x];
    }
    return tail + hsum64(acc) + _mm_cvtsi128_si64(acc128) +
           _mm_cvtsi128_si64(_mm_unpackhi_epi64(acc128, acc128));
}

void
avx2AverageU8(const u8 *a, const u8 *b, int count, u8 *out)
{
    int i = 0;
    for (; i + 32 <= count; i += 32) {
        __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + i),
                            _mm256_avg_epu8(va, vb));
    }
    for (; i + 16 <= count; i += 16) {
        __m128i va = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(a + i));
        __m128i vb = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(b + i));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + i),
                         _mm_avg_epu8(va, vb));
    }
    for (; i < count; ++i)
        out[i] = static_cast<u8>((a[i] + b[i] + 1) >> 1);
}

/** Six-tap in 16 i16 lanes (inputs are 8-bit samples). */
inline __m256i
sixTapI16(__m256i a, __m256i b, __m256i c, __m256i d, __m256i e,
          __m256i f)
{
    __m256i centre = _mm256_add_epi16(c, d);
    __m256i outer = _mm256_add_epi16(b, e);
    __m256i centre20 = _mm256_add_epi16(
        _mm256_slli_epi16(centre, 4), _mm256_slli_epi16(centre, 2));
    __m256i outer5 =
        _mm256_add_epi16(_mm256_slli_epi16(outer, 2), outer);
    return _mm256_add_epi16(_mm256_add_epi16(a, f),
                            _mm256_sub_epi16(centre20, outer5));
}

inline __m256i
loadU8AsI16(const u8 *p)
{
    return _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(p)));
}

/** Pack 16 i16 lanes to clamped u8 in lane order. */
inline __m128i
packClamp16(__m256i v)
{
    __m256i packed = _mm256_packus_epi16(v, v);
    packed = _mm256_permute4x64_epi64(packed, 0xD8); // 0,2,1,3
    return _mm256_castsi256_si128(packed);
}

void
avx2HalfHRow(const u8 *src, int count, u8 *out)
{
    const __m256i round = _mm256_set1_epi16(16);
    int i = 0;
    for (; i + 16 <= count; i += 16) {
        __m256i raw = sixTapI16(
            loadU8AsI16(src + i - 2), loadU8AsI16(src + i - 1),
            loadU8AsI16(src + i), loadU8AsI16(src + i + 1),
            loadU8AsI16(src + i + 2), loadU8AsI16(src + i + 3));
        __m256i rounded =
            _mm256_srai_epi16(_mm256_add_epi16(raw, round), 5);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + i),
                         packClamp16(rounded));
    }
    for (; i < count; ++i) {
        int raw = src[i - 2] - 5 * src[i - 1] + 20 * src[i] +
                  20 * src[i + 1] - 5 * src[i + 2] + src[i + 3];
        raw = (raw + 16) >> 5;
        out[i] = static_cast<u8>(raw < 0 ? 0 : raw > 255 ? 255 : raw);
    }
}

void
avx2HalfVRowRaw(const u8 *src, int stride, int count, i16 *out)
{
    int i = 0;
    for (; i + 16 <= count; i += 16) {
        __m256i raw = sixTapI16(loadU8AsI16(src - 2 * stride + i),
                                loadU8AsI16(src - stride + i),
                                loadU8AsI16(src + i),
                                loadU8AsI16(src + stride + i),
                                loadU8AsI16(src + 2 * stride + i),
                                loadU8AsI16(src + 3 * stride + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + i),
                            raw);
    }
    for (; i < count; ++i)
        out[i] = static_cast<i16>(
            src[i - 2 * stride] - 5 * src[i - stride] + 20 * src[i] +
            20 * src[i + stride] - 5 * src[i + 2 * stride] +
            src[i + 3 * stride]);
}

void
avx2HalfVRow(const u8 *src, int stride, int count, u8 *out)
{
    const __m256i round = _mm256_set1_epi16(16);
    int i = 0;
    for (; i + 16 <= count; i += 16) {
        __m256i raw = sixTapI16(loadU8AsI16(src - 2 * stride + i),
                                loadU8AsI16(src - stride + i),
                                loadU8AsI16(src + i),
                                loadU8AsI16(src + stride + i),
                                loadU8AsI16(src + 2 * stride + i),
                                loadU8AsI16(src + 3 * stride + i));
        __m256i rounded =
            _mm256_srai_epi16(_mm256_add_epi16(raw, round), 5);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + i),
                         packClamp16(rounded));
    }
    for (; i < count; ++i) {
        int raw = src[i - 2 * stride] - 5 * src[i - stride] +
                  20 * src[i] + 20 * src[i + stride] -
                  5 * src[i + 2 * stride] + src[i + 3 * stride];
        raw = (raw + 16) >> 5;
        out[i] = static_cast<u8>(raw < 0 ? 0 : raw > 255 ? 255 : raw);
    }
}

void
avx2SixTapHRowI16(const i16 *src, int count, u8 *out)
{
    const __m256i coeff_ab = _mm256_setr_epi16(
        1, -5, 1, -5, 1, -5, 1, -5, 1, -5, 1, -5, 1, -5, 1, -5);
    const __m256i coeff_cd = _mm256_set1_epi16(20);
    const __m256i coeff_ef = _mm256_setr_epi16(
        -5, 1, -5, 1, -5, 1, -5, 1, -5, 1, -5, 1, -5, 1, -5, 1);
    const __m256i round = _mm256_set1_epi32(512);
    int i = 0;
    for (; i + 16 <= count; i += 16) {
        __m256i vm2 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i - 2));
        __m256i vm1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i - 1));
        __m256i v0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        __m256i v1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i + 1));
        __m256i v2 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i + 2));
        __m256i v3 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i + 3));

        // unpack works per 128-bit half; the halves stay in lane
        // order because lo/hi results are recombined per half below.
        __m256i ab_lo = _mm256_unpacklo_epi16(vm2, vm1);
        __m256i ab_hi = _mm256_unpackhi_epi16(vm2, vm1);
        __m256i cd_lo = _mm256_unpacklo_epi16(v0, v1);
        __m256i cd_hi = _mm256_unpackhi_epi16(v0, v1);
        __m256i ef_lo = _mm256_unpacklo_epi16(v2, v3);
        __m256i ef_hi = _mm256_unpackhi_epi16(v2, v3);

        __m256i lo = _mm256_add_epi32(
            _mm256_add_epi32(_mm256_madd_epi16(ab_lo, coeff_ab),
                             _mm256_madd_epi16(cd_lo, coeff_cd)),
            _mm256_madd_epi16(ef_lo, coeff_ef));
        __m256i hi = _mm256_add_epi32(
            _mm256_add_epi32(_mm256_madd_epi16(ab_hi, coeff_ab),
                             _mm256_madd_epi16(cd_hi, coeff_cd)),
            _mm256_madd_epi16(ef_hi, coeff_ef));
        lo = _mm256_srai_epi32(_mm256_add_epi32(lo, round), 10);
        hi = _mm256_srai_epi32(_mm256_add_epi32(hi, round), 10);
        // packs interleaves per 128-bit half, matching the lo/hi
        // split above, so lanes come out in order.
        __m256i packed16 = _mm256_packs_epi32(lo, hi);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + i),
                         packClamp16(packed16));
    }
    for (; i < count; ++i) {
        int raw = src[i - 2] - 5 * src[i - 1] + 20 * src[i] +
                  20 * src[i + 1] - 5 * src[i + 2] + src[i + 3];
        raw = (raw + 512) >> 10;
        out[i] = static_cast<u8>(raw < 0 ? 0 : raw > 255 ? 255 : raw);
    }
}

void
avx2FoldSyndromes(const u8 *codeword, std::size_t nbytes,
                  const u16 *table, std::size_t row, u16 *synd)
{
    for (std::size_t p = 0; p < nbytes; ++p) {
        u8 v = codeword[p];
        if (!v)
            continue;
        const u16 *entry = &table[(p * 256 + v) * row];
        std::size_t i = 0;
        for (; i + 16 <= row; i += 16) {
            __m256i s = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(synd + i));
            __m256i e = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(entry + i));
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(synd + i),
                _mm256_xor_si256(s, e));
        }
        for (; i + 8 <= row; i += 8) {
            __m128i s = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(synd + i));
            __m128i e = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(entry + i));
            _mm_storeu_si128(reinterpret_cast<__m128i *>(synd + i),
                             _mm_xor_si128(s, e));
        }
        for (; i < row; ++i)
            synd[i] ^= entry[i];
    }
}

int
avx2ChienScan(i32 *acc, const i32 *step, int nterms, u16 constant,
              const i32 *alog, int n, int max_roots, i32 *roots)
{
    constexpr i32 kOrder = 1023;
    int found = 0;
    // Vectorize across positions: evaluate 8 consecutive e at once.
    // Per term the 8 exponents are acc + step * {0..7} mod 1023,
    // resolved by conditional subtraction (max value 1022 + 7*1022
    // < 8*1023), with the antilog looked up by gather.
    const __m256i lane_idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6,
                                               7);
    const __m256i zero = _mm256_setzero_si256();
    int e = 0;
    for (; e + 8 <= n && found < max_roots; e += 8) {
        __m256i val = _mm256_set1_epi32(constant);
        for (int i = 0; i < nterms; ++i) {
            __m256i idx = _mm256_add_epi32(
                _mm256_set1_epi32(acc[i]),
                _mm256_mullo_epi32(_mm256_set1_epi32(step[i]),
                                   lane_idx));
            for (int bound = 4 * kOrder; bound >= kOrder;
                 bound >>= 1) {
                __m256i over = _mm256_cmpgt_epi32(
                    idx, _mm256_set1_epi32(bound - 1));
                idx = _mm256_sub_epi32(
                    idx,
                    _mm256_and_si256(over,
                                     _mm256_set1_epi32(bound)));
            }
            val = _mm256_xor_si256(
                val, _mm256_i32gather_epi32(alog, idx, 4));
            acc[i] += 8 * step[i] % kOrder;
            acc[i] %= kOrder;
        }
        __m256i is_zero = _mm256_cmpeq_epi32(val, zero);
        unsigned mask = static_cast<unsigned>(
            _mm256_movemask_ps(_mm256_castsi256_ps(is_zero)));
        while (mask && found < max_roots) {
            int lane = __builtin_ctz(mask);
            mask &= mask - 1;
            roots[found++] = e + lane;
        }
    }
    for (; e < n && found < max_roots; ++e) {
        i32 val = constant;
        for (int i = 0; i < nterms; ++i) {
            val ^= alog[acc[i]];
            acc[i] += step[i];
            if (acc[i] >= kOrder)
                acc[i] -= kOrder;
        }
        if (val == 0)
            roots[found++] = e;
    }
    return found;
}

} // namespace

bool
fillAvx2Kernels(SimdKernels &kernels)
{
    kernels.sadRect = avx2SadRect;
    kernels.averageU8 = avx2AverageU8;
    kernels.halfHRow = avx2HalfHRow;
    kernels.halfVRowRaw = avx2HalfVRowRaw;
    kernels.halfVRow = avx2HalfVRow;
    kernels.sixTapHRowI16 = avx2SixTapHRowI16;
    kernels.foldSyndromes = avx2FoldSyndromes;
    kernels.chienScan = avx2ChienScan;
    return true;
}

} // namespace simd
} // namespace videoapp

#else // !defined(__AVX2__)

namespace videoapp {
namespace simd {

bool
fillAvx2Kernels(SimdKernels &)
{
    return false;
}

} // namespace simd
} // namespace videoapp

#endif
