/**
 * @file
 * Procedural video workload generator.
 *
 * The paper evaluates on 14 raw Xiph.Org sequences (1280x720, 500-600
 * frames). Those assets are not redistributable here, so this module
 * synthesises a 14-sequence suite with the content classes that drive
 * codec behaviour: textured backgrounds (intra cost), global pans and
 * zooms (coherent motion), independently moving objects (partitioned
 * motion, occlusion), sensor noise (residual energy), scene cuts and
 * brightness ramps (prediction failure). DESIGN.md records this
 * substitution.
 */

#ifndef VIDEOAPP_VIDEO_SYNTHETIC_H_
#define VIDEOAPP_VIDEO_SYNTHETIC_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "video/frame.h"

namespace videoapp {

/** Parameters for one synthetic sequence. */
struct SyntheticSpec
{
    std::string name;
    int width = 320;
    int height = 192;
    int frames = 96;
    double fps = 50.0;

    /** Background texture spatial frequency (cells across the width). */
    int textureCells = 12;
    /** Global pan velocity in pixels/frame. */
    double panX = 0.0, panY = 0.0;
    /** Global zoom rate per frame (1.0 = none). */
    double zoomRate = 1.0;
    /** Number of independently moving sprites. */
    int sprites = 0;
    /** Max sprite speed in pixels/frame. */
    double spriteSpeed = 2.0;
    /** Per-pixel Gaussian sensor noise sigma (luma levels). */
    double noiseSigma = 0.0;
    /** Per-frame global brightness drift (levels/frame). */
    double brightnessRamp = 0.0;
    /** Insert a hard scene cut at this frame (-1 = none). */
    int sceneCutAt = -1;
    /** RNG seed; fixed per suite entry for reproducibility. */
    u64 seed = 1;
};

/** Render the sequence described by @p spec. */
Video generateSynthetic(const SyntheticSpec &spec);

/**
 * The standard 14-sequence evaluation suite (stand-in for the Xiph
 * set). @p scale multiplies resolution and frame count for quick (<1)
 * or thorough (>1) runs; dimensions stay multiples of 16.
 */
std::vector<SyntheticSpec> standardSuite(double scale = 1.0);

/** A single small sequence for unit tests (64x64, 20 frames). */
SyntheticSpec tinySpec(u64 seed = 7);

} // namespace videoapp

#endif // VIDEOAPP_VIDEO_SYNTHETIC_H_
