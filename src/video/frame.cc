#include "video/frame.h"

namespace videoapp {

Frame::Frame(int width, int height)
    : y_(width, height, 16),
      u_(width / 2, height / 2, 128),
      v_(width / 2, height / 2, 128)
{
    assert(width > 0 && height > 0);
    assert(width % 16 == 0 && height % 16 == 0);
}

std::size_t
Frame::pixelCount() const
{
    return static_cast<std::size_t>(width()) * height();
}

bool
Frame::sameSize(const Frame &other) const
{
    return y_.sameSize(other.y_);
}

std::size_t
Video::pixelCount() const
{
    std::size_t total = 0;
    for (const auto &f : frames)
        total += f.pixelCount();
    return total;
}

} // namespace videoapp
