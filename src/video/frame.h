/**
 * @file
 * Raw video frames in YUV 4:2:0 planar format.
 *
 * Frames are the interface between the synthetic workload generator,
 * the codec, and the quality metrics. Dimensions are constrained to
 * multiples of 16 so every frame tiles exactly into macroblocks.
 */

#ifndef VIDEOAPP_VIDEO_FRAME_H_
#define VIDEOAPP_VIDEO_FRAME_H_

#include <cassert>
#include <cstddef>
#include <vector>

#include "common/types.h"

namespace videoapp {

/**
 * One image plane of 8-bit samples with explicit dimensions.
 *
 * Access is bounds-asserted in debug builds; the edge-extended
 * accessors implement the unrestricted-motion-vector padding used by
 * motion compensation.
 */
class Plane
{
  public:
    Plane() = default;
    Plane(int width, int height, u8 fill = 0)
        : width_(width), height_(height),
          data_(static_cast<std::size_t>(width) * height, fill)
    {}

    int width() const { return width_; }
    int height() const { return height_; }

    u8
    at(int x, int y) const
    {
        assert(x >= 0 && x < width_ && y >= 0 && y < height_);
        return data_[static_cast<std::size_t>(y) * width_ + x];
    }

    u8 &
    at(int x, int y)
    {
        assert(x >= 0 && x < width_ && y >= 0 && y < height_);
        return data_[static_cast<std::size_t>(y) * width_ + x];
    }

    /** Sample with coordinates clamped to the plane edges. */
    u8
    atClamped(int x, int y) const
    {
        if (x < 0) x = 0;
        if (x >= width_) x = width_ - 1;
        if (y < 0) y = 0;
        if (y >= height_) y = height_ - 1;
        return data_[static_cast<std::size_t>(y) * width_ + x];
    }

    const std::vector<u8> &data() const { return data_; }
    std::vector<u8> &data() { return data_; }

    bool
    sameSize(const Plane &other) const
    {
        return width_ == other.width_ && height_ == other.height_;
    }

  private:
    int width_ = 0;
    int height_ = 0;
    std::vector<u8> data_;
};

/**
 * A YUV 4:2:0 frame: full-resolution luma plus half-resolution chroma.
 */
class Frame
{
  public:
    Frame() = default;

    /** @pre width and height are positive multiples of 16. */
    Frame(int width, int height);

    int width() const { return y_.width(); }
    int height() const { return y_.height(); }

    Plane &y() { return y_; }
    Plane &u() { return u_; }
    Plane &v() { return v_; }
    const Plane &y() const { return y_; }
    const Plane &u() const { return u_; }
    const Plane &v() const { return v_; }

    /** Number of luma pixels (the paper's density denominator). */
    std::size_t pixelCount() const;

    bool sameSize(const Frame &other) const;

  private:
    Plane y_, u_, v_;
};

/** A sequence of equally sized frames plus its nominal frame rate. */
struct Video
{
    std::vector<Frame> frames;
    double fps = 50.0;

    int width() const { return frames.empty() ? 0 : frames[0].width(); }
    int height() const { return frames.empty() ? 0 : frames[0].height(); }

    /** Total luma pixels across all frames. */
    std::size_t pixelCount() const;
};

} // namespace videoapp

#endif // VIDEOAPP_VIDEO_FRAME_H_
