#include "video/yuv_io.h"

#include <cstdio>
#include <fstream>

namespace videoapp {

Video
loadI420(const std::string &path, int width, int height, double fps)
{
    Video video;
    video.fps = fps;
    if (width <= 0 || height <= 0 || width % 16 || height % 16)
        return video;

    std::ifstream in(path, std::ios::binary);
    if (!in)
        return video;

    std::size_t ysize = static_cast<std::size_t>(width) * height;
    std::size_t csize = ysize / 4;

    for (;;) {
        Frame frame(width, height);
        in.read(reinterpret_cast<char *>(frame.y().data().data()),
                static_cast<std::streamsize>(ysize));
        if (in.gcount() != static_cast<std::streamsize>(ysize))
            break;
        in.read(reinterpret_cast<char *>(frame.u().data().data()),
                static_cast<std::streamsize>(csize));
        if (in.gcount() != static_cast<std::streamsize>(csize))
            break;
        in.read(reinterpret_cast<char *>(frame.v().data().data()),
                static_cast<std::streamsize>(csize));
        if (in.gcount() != static_cast<std::streamsize>(csize))
            break;
        video.frames.push_back(std::move(frame));
    }
    return video;
}

bool
saveI420(const Video &video, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    for (const auto &frame : video.frames) {
        auto put = [&out](const Plane &p) {
            out.write(reinterpret_cast<const char *>(p.data().data()),
                      static_cast<std::streamsize>(p.data().size()));
        };
        put(frame.y());
        put(frame.u());
        put(frame.v());
    }
    return static_cast<bool>(out);
}

bool
savePgm(const Plane &plane, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << "P5\n" << plane.width() << " " << plane.height() << "\n255\n";
    out.write(reinterpret_cast<const char *>(plane.data().data()),
              static_cast<std::streamsize>(plane.data().size()));
    return static_cast<bool>(out);
}

} // namespace videoapp
