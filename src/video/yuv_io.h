/**
 * @file
 * Minimal planar YUV and PGM file I/O.
 *
 * Lets users feed real footage into the pipeline (raw I420 files, as
 * produced by `ffmpeg -pix_fmt yuv420p`) and dump frames or importance
 * maps for visual inspection.
 */

#ifndef VIDEOAPP_VIDEO_YUV_IO_H_
#define VIDEOAPP_VIDEO_YUV_IO_H_

#include <string>

#include "video/frame.h"

namespace videoapp {

/**
 * Load a raw planar I420 file of known dimensions.
 * @return empty video if the file cannot be read or is truncated.
 */
Video loadI420(const std::string &path, int width, int height,
               double fps = 50.0);

/** Write a video as raw planar I420. @return false on I/O error. */
bool saveI420(const Video &video, const std::string &path);

/** Dump one plane as a binary PGM image. @return false on I/O error. */
bool savePgm(const Plane &plane, const std::string &path);

} // namespace videoapp

#endif // VIDEOAPP_VIDEO_YUV_IO_H_
