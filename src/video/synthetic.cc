#include "video/synthetic.h"

#include <algorithm>
#include <cmath>

namespace videoapp {

namespace {

/**
 * Smooth value-noise texture, periodic in both directions so panning
 * wraps seamlessly. Sampled bilinearly between lattice points.
 */
class ValueNoise
{
  public:
    ValueNoise(int cells_x, int cells_y, Rng &rng)
        : cx_(std::max(cells_x, 2)), cy_(std::max(cells_y, 2)),
          lattice_(static_cast<std::size_t>(cx_) * cy_)
    {
        for (auto &v : lattice_)
            v = rng.nextDouble();
    }

    /** Sample at lattice-space coordinates (wrapping). */
    double
    sample(double x, double y) const
    {
        double fx = x - std::floor(x / cx_) * cx_;
        double fy = y - std::floor(y / cy_) * cy_;
        int x0 = static_cast<int>(fx) % cx_;
        int y0 = static_cast<int>(fy) % cy_;
        int x1 = (x0 + 1) % cx_;
        int y1 = (y0 + 1) % cy_;
        double tx = smooth(fx - std::floor(fx));
        double ty = smooth(fy - std::floor(fy));
        double a = at(x0, y0) * (1 - tx) + at(x1, y0) * tx;
        double b = at(x0, y1) * (1 - tx) + at(x1, y1) * tx;
        return a * (1 - ty) + b * ty;
    }

  private:
    static double smooth(double t) { return t * t * (3 - 2 * t); }

    double
    at(int x, int y) const
    {
        return lattice_[static_cast<std::size_t>(y) * cx_ + x];
    }

    int cx_, cy_;
    std::vector<double> lattice_;
};

struct Sprite
{
    double x, y;        // centre, pixels
    double vx, vy;      // pixels/frame
    double radius;      // pixels
    double luma;        // 0..255
    double cb, cr;      // chroma offsets
    bool rect;          // rectangle vs. disc
};

u8
clampPixel(double v)
{
    return static_cast<u8>(std::clamp(v, 0.0, 255.0));
}

} // namespace

Video
generateSynthetic(const SyntheticSpec &spec)
{
    Rng rng(spec.seed);
    ValueNoise texture(spec.textureCells,
                       std::max(2, spec.textureCells * spec.height /
                                       std::max(spec.width, 1)),
                       rng);
    // Second texture bank used after an optional scene cut.
    ValueNoise texture2(spec.textureCells + 3,
                        spec.textureCells + 2, rng);
    ValueNoise chromaTex(std::max(2, spec.textureCells / 2),
                         std::max(2, spec.textureCells / 2), rng);

    std::vector<Sprite> sprites(spec.sprites);
    for (auto &s : sprites) {
        s.x = rng.nextDouble() * spec.width;
        s.y = rng.nextDouble() * spec.height;
        double angle = rng.nextDouble() * 2 * M_PI;
        double speed = (0.3 + 0.7 * rng.nextDouble()) * spec.spriteSpeed;
        s.vx = std::cos(angle) * speed;
        s.vy = std::sin(angle) * speed;
        s.radius = 6 + rng.nextDouble() * spec.width / 10.0;
        s.luma = 40 + rng.nextDouble() * 180;
        s.cb = (rng.nextDouble() - 0.5) * 80;
        s.cr = (rng.nextDouble() - 0.5) * 80;
        s.rect = rng.nextBool(0.5);
    }

    Video video;
    video.fps = spec.fps;
    video.frames.reserve(spec.frames);

    double cells_per_px = static_cast<double>(spec.textureCells) /
                          std::max(spec.width, 1);

    for (int t = 0; t < spec.frames; ++t) {
        Frame frame(spec.width, spec.height);
        bool post_cut = spec.sceneCutAt >= 0 && t >= spec.sceneCutAt;
        const ValueNoise &tex = post_cut ? texture2 : texture;

        double zoom = std::pow(spec.zoomRate, t);
        double ox = spec.panX * t;
        double oy = spec.panY * t;
        double bright = spec.brightnessRamp * t;
        double cx = spec.width / 2.0;
        double cy = spec.height / 2.0;

        for (int y = 0; y < spec.height; ++y) {
            for (int x = 0; x < spec.width; ++x) {
                // World coordinate after pan/zoom about the centre.
                double wx = (x - cx) / zoom + cx + ox;
                double wy = (y - cy) / zoom + cy + oy;
                double n = tex.sample(wx * cells_per_px,
                                      wy * cells_per_px);
                double luma = 48 + 160 * n + bright;
                frame.y().at(x, y) = clampPixel(luma);
            }
        }
        for (int y = 0; y < spec.height / 2; ++y) {
            for (int x = 0; x < spec.width / 2; ++x) {
                double wx = (2 * x - cx) / zoom + cx + ox;
                double wy = (2 * y - cy) / zoom + cy + oy;
                double n = chromaTex.sample(wx * cells_per_px,
                                            wy * cells_per_px);
                frame.u().at(x, y) = clampPixel(128 + (n - 0.5) * 60);
                frame.v().at(x, y) = clampPixel(128 + (0.5 - n) * 60);
            }
        }

        // Composite sprites over the background.
        for (const auto &s : sprites) {
            double sx = s.x + s.vx * t;
            double sy = s.y + s.vy * t;
            // Wrap sprite centres so they stay in view.
            sx = sx - std::floor(sx / spec.width) * spec.width;
            sy = sy - std::floor(sy / spec.height) * spec.height;
            int x0 = std::max(0, static_cast<int>(sx - s.radius));
            int x1 = std::min(spec.width - 1,
                              static_cast<int>(sx + s.radius));
            int y0 = std::max(0, static_cast<int>(sy - s.radius));
            int y1 = std::min(spec.height - 1,
                              static_cast<int>(sy + s.radius));
            for (int y = y0; y <= y1; ++y) {
                for (int x = x0; x <= x1; ++x) {
                    double dx = x - sx, dy = y - sy;
                    bool inside = s.rect
                        ? (std::abs(dx) <= s.radius * 0.8 &&
                           std::abs(dy) <= s.radius * 0.6)
                        : (dx * dx + dy * dy <= s.radius * s.radius);
                    if (!inside)
                        continue;
                    // Light texture on the sprite so it is not flat.
                    double shade = texture.sample(dx * 0.2, dy * 0.2);
                    frame.y().at(x, y) =
                        clampPixel(s.luma + 30 * (shade - 0.5) + bright);
                    int cx2 = x / 2, cy2 = y / 2;
                    frame.u().at(cx2, cy2) = clampPixel(128 + s.cb);
                    frame.v().at(cx2, cy2) = clampPixel(128 + s.cr);
                }
            }
        }

        if (spec.noiseSigma > 0) {
            for (auto &p : frame.y().data())
                p = clampPixel(p + rng.nextGaussian() * spec.noiseSigma);
        }

        video.frames.push_back(std::move(frame));
    }
    return video;
}

std::vector<SyntheticSpec>
standardSuite(double scale)
{
    auto dim = [scale](int base) {
        int scaled = static_cast<int>(base * scale);
        int snapped = std::max(32, (scaled / 16) * 16);
        return snapped;
    };
    auto len = [scale](int base) {
        return std::max(12, static_cast<int>(base * scale));
    };

    int w = dim(320), h = dim(192);

    std::vector<SyntheticSpec> suite;
    auto add = [&](SyntheticSpec s, u64 seed) {
        s.width = w;
        s.height = h;
        s.frames = len(s.frames);
        s.seed = seed;
        suite.push_back(s);
    };

    // 14 sequences, one per content class the Xiph suite spans.
    add({.name = "park_pan", .frames = 96, .textureCells = 14,
         .panX = 1.5, .sprites = 0}, 101);
    add({.name = "crowd_run", .frames = 96, .textureCells = 10,
         .panX = 0.6, .sprites = 12, .spriteSpeed = 3.0}, 102);
    add({.name = "ducks_takeoff", .frames = 96, .textureCells = 16,
         .sprites = 8, .spriteSpeed = 4.0, .noiseSigma = 1.5}, 103);
    add({.name = "in_to_tree", .frames = 96, .textureCells = 12,
         .zoomRate = 1.004}, 104);
    add({.name = "old_town_cross", .frames = 96, .textureCells = 20,
         .panX = 0.4, .panY = 0.2}, 105);
    add({.name = "shields", .frames = 96, .textureCells = 18,
         .panX = 2.2, .sprites = 2}, 106);
    add({.name = "stockholm", .frames = 96, .textureCells = 24,
         .panY = 0.8}, 107);
    add({.name = "mobcal", .frames = 96, .textureCells = 22,
         .panX = -1.0, .sprites = 3, .spriteSpeed = 1.0}, 108);
    add({.name = "parkrun", .frames = 96, .textureCells = 15,
         .panX = 3.0, .sprites = 5, .spriteSpeed = 3.5,
         .noiseSigma = 1.0}, 109);
    add({.name = "blue_sky", .frames = 96, .textureCells = 6,
         .zoomRate = 0.997, .sprites = 1}, 110);
    add({.name = "pedestrian_area", .frames = 96, .textureCells = 9,
         .sprites = 9, .spriteSpeed = 1.5}, 111);
    add({.name = "riverbed", .frames = 96, .textureCells = 28,
         .sprites = 0, .noiseSigma = 4.0}, 112);
    add({.name = "rush_hour", .frames = 96, .textureCells = 11,
         .sprites = 14, .spriteSpeed = 0.8,
         .brightnessRamp = 0.15}, 113);
    add({.name = "sunflower", .frames = 96, .textureCells = 8,
         .sprites = 2, .spriteSpeed = 0.5, .sceneCutAt = 48}, 114);

    return suite;
}

SyntheticSpec
tinySpec(u64 seed)
{
    SyntheticSpec s;
    s.name = "tiny";
    s.width = 64;
    s.height = 64;
    s.frames = 20;
    s.textureCells = 5;
    s.panX = 0.8;
    s.sprites = 2;
    s.spriteSpeed = 1.5;
    s.seed = seed;
    return s;
}

} // namespace videoapp
