/**
 * @file
 * Bit-range bookkeeping for the paper's injection experiments:
 * equal-storage importance bins (Figure 9) and cumulative importance
 * classes (Figure 10).
 */

#ifndef VIDEOAPP_SIM_BINNING_H_
#define VIDEOAPP_SIM_BINNING_H_

#include <vector>

#include "codec/encoder.h"
#include "graph/importance.h"

namespace videoapp {

/** A set of disjoint payload bit ranges across frames. */
class BitRangeSet
{
  public:
    struct Range
    {
        u32 frame;  // encode-order frame index
        u64 begin;  // bit offset within that frame's payload
        u64 end;
    };

    void add(u32 frame, u64 begin, u64 end);

    u64 totalBits() const { return totalBits_; }
    const std::vector<Range> &ranges() const { return ranges_; }
    bool empty() const { return totalBits_ == 0; }

    /** Map a flat position in [0, totalBits) to (frame, bit). */
    std::pair<u32, u64> locate(u64 flat_pos) const;

  private:
    std::vector<Range> ranges_;
    std::vector<u64> prefix_; // cumulative bits before each range
    u64 totalBits_ = 0;
};

/** One Figure 9 bin: equal storage, ascending importance. */
struct ImportanceBin
{
    BitRangeSet bits;
    double maxImportance = 0.0;
};

/**
 * Sort all MBs by importance and split them into @p bin_count bins
 * of (approximately) equal stored bits, least important first —
 * exactly the Section 7.1 validation setup.
 */
std::vector<ImportanceBin> buildImportanceBins(
    const EncodeResult &enc, const ImportanceMap &importance,
    int bin_count);

/**
 * Bits of all MBs whose importance class is <= @p max_class
 * (Figure 10's cumulative classes).
 */
BitRangeSet classBits(const EncodeResult &enc,
                      const ImportanceMap &importance, int max_class);

/** Fraction of total payload bits occupied by classes <= max_class. */
double cumulativeStorageFraction(const EncodeResult &enc,
                                 const ImportanceMap &importance,
                                 int max_class);

/** The set of importance classes that actually occur, ascending. */
std::vector<int> occurringClasses(const EncodeResult &enc,
                                  const ImportanceMap &importance);

} // namespace videoapp

#endif // VIDEOAPP_SIM_BINNING_H_
