/**
 * @file
 * Shared configuration for the experiment (bench) binaries.
 *
 * Every bench reproduces a paper table or figure at a default scale
 * that completes in seconds; environment variables raise the scale
 * toward the paper's full setup:
 *   VIDEOAPP_BENCH_SCALE  resolution/length multiplier (default 0.3)
 *   VIDEOAPP_BENCH_RUNS   Monte Carlo runs per point (default 5;
 *                         paper uses 30)
 *   VIDEOAPP_BENCH_VIDEOS suite videos to use (default 3; paper 14)
 */

#ifndef VIDEOAPP_SIM_BENCH_CONFIG_H_
#define VIDEOAPP_SIM_BENCH_CONFIG_H_

#include <cstdio>
#include <string>
#include <vector>

#include "video/synthetic.h"

namespace videoapp {

struct BenchConfig
{
    double scale = 0.3;
    int runs = 5;
    int videos = 3;
    /** Directory for plot-ready CSV output ("" = disabled);
     * VIDEOAPP_BENCH_CSV. */
    std::string csvDir;

    /** Read overrides from the environment. */
    static BenchConfig fromEnv();

    /** The first `videos` sequences of the standard suite. */
    std::vector<SyntheticSpec> suite() const;
};

/** Print a one-line banner describing the bench configuration. */
void printBenchBanner(const char *name, const BenchConfig &config);

/**
 * Plot-ready CSV emission: opened only when the bench was run with
 * VIDEOAPP_BENCH_CSV=<dir>. Rows go to <dir>/<name>.csv; when
 * disabled every call is a no-op, so bench code can emit
 * unconditionally. tools/plot_figures.py consumes these files.
 */
class CsvWriter
{
  public:
    CsvWriter(const BenchConfig &config, const std::string &name,
              const std::string &header);
    ~CsvWriter();

    /** Append one row (caller formats the comma-separated values). */
    void row(const std::string &values);

    bool enabled() const { return file_ != nullptr; }

  private:
    std::FILE *file_ = nullptr;
};

} // namespace videoapp

#endif // VIDEOAPP_SIM_BENCH_CONFIG_H_
