#include "sim/calibrate.h"

#include <algorithm>
#include <map>

#include "graph/importance.h"
#include "sim/binning.h"
#include "sim/monte_carlo.h"

namespace videoapp {

std::vector<double>
defaultCalibrationRates()
{
    return {1e-12, 1e-10, 1e-8, 1e-6, 1e-4, 1e-3, 1e-2};
}

std::vector<ClassCurve>
measureClassCurves(const std::vector<SyntheticSpec> &suite,
                   const EncoderConfig &enc_config, int runs,
                   const std::vector<double> &rates, u64 seed)
{
    std::map<int, std::vector<double>> loss;
    std::map<int, double> storage;

    u64 video_idx = 0;
    for (const SyntheticSpec &spec : suite) {
        Video source = generateSynthetic(spec);
        EncodeResult enc = encodeVideo(source, enc_config);
        ImportanceMap importance =
            computeImportance(enc.side, enc.video);

        Rng rng(seed + video_idx);
        for (int cls : occurringClasses(enc, importance)) {
            BitRangeSet bits = classBits(enc, importance, cls);
            auto &row = loss[cls];
            row.resize(rates.size(), 0.0);
            for (std::size_t r = 0; r < rates.size(); ++r) {
                LossStats stats = measureQualityLoss(
                    source, enc, bits, rates[r], runs, rng);
                row[r] = std::max(row[r], stats.maxLossDb);
            }
            storage[cls] = std::max(
                storage[cls],
                cumulativeStorageFraction(enc, importance, cls));
        }
        ++video_idx;
    }

    // True loss curves are monotone along both axes — in the error
    // rate (more errors cannot help) and in the class index (classes
    // are nested). Enforce both to strip Monte Carlo noise.
    std::vector<ClassCurve> curves;
    std::vector<double> running_loss;
    double running_storage = 0.0;
    for (auto &[cls, row] : loss) {
        for (std::size_t r = 1; r < row.size(); ++r)
            row[r] = std::max(row[r], row[r - 1]);
        if (running_loss.empty())
            running_loss.assign(row.size(), 0.0);
        ClassCurve curve;
        curve.cls = cls;
        for (std::size_t r = 0; r < row.size(); ++r) {
            running_loss[r] = std::max(running_loss[r], row[r]);
            curve.points.push_back({rates[r], running_loss[r]});
        }
        running_storage = std::max(running_storage, storage[cls]);
        curve.cumulativeStorage = running_storage;
        curves.push_back(std::move(curve));
    }
    return curves;
}

EccAssignment
calibrateAssignment(const std::vector<SyntheticSpec> &suite,
                    const EncoderConfig &enc_config, int runs,
                    double budget_db, u64 seed)
{
    auto curves = measureClassCurves(suite, enc_config, runs,
                                     defaultCalibrationRates(),
                                     seed);
    return optimizeAssignment(curves, budget_db);
}

} // namespace videoapp
