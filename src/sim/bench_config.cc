#include "sim/bench_config.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace videoapp {

BenchConfig
BenchConfig::fromEnv()
{
    BenchConfig config;
    if (const char *s = std::getenv("VIDEOAPP_BENCH_SCALE"))
        config.scale = std::max(0.05, std::atof(s));
    if (const char *s = std::getenv("VIDEOAPP_BENCH_RUNS"))
        config.runs = std::max(1, std::atoi(s));
    if (const char *s = std::getenv("VIDEOAPP_BENCH_VIDEOS"))
        config.videos = std::max(1, std::atoi(s));
    if (const char *s = std::getenv("VIDEOAPP_BENCH_CSV"))
        config.csvDir = s;
    return config;
}

CsvWriter::CsvWriter(const BenchConfig &config, const std::string &name,
                     const std::string &header)
{
    if (config.csvDir.empty())
        return;
    std::string path = config.csvDir + "/" + name + ".csv";
    file_ = std::fopen(path.c_str(), "w");
    if (file_)
        std::fprintf(file_, "%s\n", header.c_str());
    else
        std::fprintf(stderr, "warning: cannot write %s\n",
                     path.c_str());
}

CsvWriter::~CsvWriter()
{
    if (file_)
        std::fclose(file_);
}

void
CsvWriter::row(const std::string &values)
{
    if (file_)
        std::fprintf(file_, "%s\n", values.c_str());
}

std::vector<SyntheticSpec>
BenchConfig::suite() const
{
    auto all = standardSuite(scale);
    if (static_cast<std::size_t>(videos) < all.size())
        all.resize(static_cast<std::size_t>(videos));
    return all;
}

void
printBenchBanner(const char *name, const BenchConfig &config)
{
    std::printf("=== %s ===\n", name);
    std::printf("(scale %.2f, %d Monte Carlo runs, %d videos; set "
                "VIDEOAPP_BENCH_{SCALE,RUNS,VIDEOS} to rescale)\n\n",
                config.scale, config.runs, config.videos);
}

} // namespace videoapp
