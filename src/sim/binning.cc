#include "sim/binning.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace videoapp {

void
BitRangeSet::add(u32 frame, u64 begin, u64 end)
{
    if (end <= begin)
        return;
    ranges_.push_back({frame, begin, end});
    prefix_.push_back(totalBits_);
    totalBits_ += end - begin;
}

std::pair<u32, u64>
BitRangeSet::locate(u64 flat_pos) const
{
    assert(flat_pos < totalBits_);
    // Binary search over the prefix sums.
    std::size_t lo = 0, hi = ranges_.size();
    while (hi - lo > 1) {
        std::size_t mid = (lo + hi) / 2;
        if (prefix_[mid] <= flat_pos)
            lo = mid;
        else
            hi = mid;
    }
    const Range &r = ranges_[lo];
    return {r.frame, r.begin + (flat_pos - prefix_[lo])};
}

namespace {

struct MbRef
{
    u32 frame;
    u32 mb;
    double importance;
    u64 bits;
};

std::vector<MbRef>
collectMbs(const EncodeResult &enc, const ImportanceMap &importance)
{
    std::vector<MbRef> mbs;
    for (std::size_t f = 0; f < enc.side.frames.size(); ++f) {
        const auto &frame = enc.side.frames[f];
        for (std::size_t m = 0; m < frame.mbs.size(); ++m) {
            mbs.push_back({static_cast<u32>(f), static_cast<u32>(m),
                           importance.values[f][m],
                           frame.mbs[m].bitLength});
        }
    }
    return mbs;
}

void
addMbBits(BitRangeSet &set, const EncodeResult &enc, u32 frame,
          u32 mb)
{
    const MbRecord &rec = enc.side.frames[frame].mbs[mb];
    set.add(frame, rec.bitOffset, rec.bitOffset + rec.bitLength);
}

} // namespace

std::vector<ImportanceBin>
buildImportanceBins(const EncodeResult &enc,
                    const ImportanceMap &importance, int bin_count)
{
    std::vector<MbRef> mbs = collectMbs(enc, importance);
    std::stable_sort(mbs.begin(), mbs.end(),
                     [](const MbRef &a, const MbRef &b) {
                         return a.importance < b.importance;
                     });
    u64 total_bits = 0;
    for (const auto &mb : mbs)
        total_bits += mb.bits;

    std::vector<ImportanceBin> bins(
        static_cast<std::size_t>(bin_count));
    u64 per_bin = (total_bits + bin_count - 1) / bin_count;
    u64 filled = 0;
    std::size_t bin = 0;
    for (const auto &mb : mbs) {
        if (filled >= per_bin * (bin + 1) &&
            bin + 1 < bins.size())
            ++bin;
        addMbBits(bins[bin].bits, enc, mb.frame, mb.mb);
        bins[bin].maxImportance =
            std::max(bins[bin].maxImportance, mb.importance);
        filled += mb.bits;
    }
    return bins;
}

BitRangeSet
classBits(const EncodeResult &enc, const ImportanceMap &importance,
          int max_class)
{
    BitRangeSet set;
    for (std::size_t f = 0; f < enc.side.frames.size(); ++f) {
        const auto &frame = enc.side.frames[f];
        for (std::size_t m = 0; m < frame.mbs.size(); ++m) {
            if (ImportanceMap::classOf(importance.values[f][m]) <=
                max_class)
                addMbBits(set, enc, static_cast<u32>(f),
                          static_cast<u32>(m));
        }
    }
    return set;
}

double
cumulativeStorageFraction(const EncodeResult &enc,
                          const ImportanceMap &importance,
                          int max_class)
{
    u64 total = 0, in_class = 0;
    for (std::size_t f = 0; f < enc.side.frames.size(); ++f) {
        const auto &frame = enc.side.frames[f];
        for (std::size_t m = 0; m < frame.mbs.size(); ++m) {
            total += frame.mbs[m].bitLength;
            if (ImportanceMap::classOf(importance.values[f][m]) <=
                max_class)
                in_class += frame.mbs[m].bitLength;
        }
    }
    return total ? static_cast<double>(in_class) / total : 0.0;
}

std::vector<int>
occurringClasses(const EncodeResult &enc,
                 const ImportanceMap &importance)
{
    std::set<int> classes;
    for (std::size_t f = 0; f < enc.side.frames.size(); ++f)
        for (double v : importance.values[f])
            classes.insert(ImportanceMap::classOf(v));
    return {classes.begin(), classes.end()};
}

} // namespace videoapp
