/**
 * @file
 * Assignment calibration: the paper's two-step use of VideoApp
 * (Section 6): first profile a set of videos across error rates to
 * establish the per-class approximation levels, then apply the
 * resulting assignment when partitioning streams.
 *
 * The importance thresholds of the paper's Table 1 are empirical
 * properties of the 720p evaluation suite; at other scales the same
 * procedure yields a different (correctly scaled) table.
 */

#ifndef VIDEOAPP_SIM_CALIBRATE_H_
#define VIDEOAPP_SIM_CALIBRATE_H_

#include <vector>

#include "codec/encoder.h"
#include "core/ecc_assign.h"
#include "video/synthetic.h"

namespace videoapp {

/** Default error-rate grid for curve measurement. */
std::vector<double> defaultCalibrationRates();

/**
 * Measure the cumulative per-class quality-loss curves (Figure 10
 * data) over @p suite with @p runs Monte Carlo runs per point.
 * Worst case across videos and runs, per the paper's conservative
 * reporting.
 */
std::vector<ClassCurve> measureClassCurves(
    const std::vector<SyntheticSpec> &suite,
    const EncoderConfig &enc_config, int runs,
    const std::vector<double> &rates, u64 seed);

/**
 * Full calibration: measure curves, then run the Section 7.2
 * optimiser with @p budget_db (0.3 dB in the paper).
 */
EccAssignment calibrateAssignment(
    const std::vector<SyntheticSpec> &suite,
    const EncoderConfig &enc_config, int runs, double budget_db,
    u64 seed = 42);

} // namespace videoapp

#endif // VIDEOAPP_SIM_CALIBRATE_H_
