/**
 * @file
 * Monte Carlo quality-loss measurement (Section 6.4): inject
 * binomially distributed bit errors into selected payload ranges,
 * decode, and measure the quality change against the error-free
 * decode. Implements the paper's low-rate trick: when fewer than
 * one error is expected per video, inject exactly one and scale the
 * loss by the probability of any error occurring.
 */

#ifndef VIDEOAPP_SIM_MONTE_CARLO_H_
#define VIDEOAPP_SIM_MONTE_CARLO_H_

#include "codec/encoder.h"
#include "common/rng.h"
#include "sim/binning.h"
#include "video/frame.h"

namespace videoapp {

/** Aggregated loss over the Monte Carlo runs. */
struct LossStats
{
    /** Worst-case loss (the paper's conservative headline number). */
    double maxLossDb = 0.0;
    double meanLossDb = 0.0;
    int runs = 0;
};

/**
 * Flip bits inside @p targets of a copy of @p enc's payloads at
 * @p error_rate and decode.
 * @return per-run dB loss of PSNR(original, corrupted) versus
 *         PSNR(original, clean reconstruction).
 *
 * Trials execute on the parallelFor pool with one child generator
 * per trial (seeds drawn from @p rng up front, one draw per run);
 * the result is bit-identical at any thread count.
 */
LossStats measureQualityLoss(const Video &original,
                             const EncodeResult &enc,
                             const BitRangeSet &targets,
                             double error_rate, int runs, Rng &rng);

/**
 * Corrupt a copy of the payloads: binomial error count over
 * @p targets at @p error_rate, uniform positions. @return flipped
 * (frame, bit) pairs. Exposed for experiment code reuse.
 */
std::vector<std::pair<u32, u64>> corruptPayloads(
    std::vector<Bytes> &payloads, const BitRangeSet &targets,
    double error_rate, Rng &rng);

/**
 * Decode @p enc's stream with @p payloads substituted; convenience
 * for injection experiments.
 */
Video decodeWithPayloads(const EncodeResult &enc,
                         std::vector<Bytes> payloads);

/** PSNR of @p original against the encoder's clean reconstruction. */
double cleanPsnr(const Video &original, const EncodeResult &enc);

} // namespace videoapp

#endif // VIDEOAPP_SIM_MONTE_CARLO_H_
