#include "sim/monte_carlo.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "codec/decoder.h"
#include "common/bitstream.h"
#include "common/parallel.h"
#include "common/telemetry.h"
#include "quality/psnr.h"

namespace videoapp {

std::vector<std::pair<u32, u64>>
corruptPayloads(std::vector<Bytes> &payloads,
                const BitRangeSet &targets, double error_rate,
                Rng &rng)
{
    std::vector<std::pair<u32, u64>> flips;
    if (targets.empty() || error_rate <= 0)
        return flips;

    const u64 n = targets.totalBits();
    u64 count = rng.nextBinomial(n, error_rate);
    count = std::min<u64>(count, n);

    std::unordered_set<u64> seen;
    while (seen.size() < count) {
        u64 flat = rng.nextBelow(n);
        if (!seen.insert(flat).second)
            continue;
        auto [frame, bit] = targets.locate(flat);
        if (frame < payloads.size())
            flipBit(payloads[frame], bit);
        flips.emplace_back(frame, bit);
    }
    return flips;
}

Video
decodeWithPayloads(const EncodeResult &enc, std::vector<Bytes> payloads)
{
    EncodedVideo video = enc.video;
    video.payloads = std::move(payloads);
    return decodeVideo(video);
}

double
cleanPsnr(const Video &original, const EncodeResult &enc)
{
    Video recon;
    recon.fps = original.fps;
    recon.frames = enc.reconFrames;
    return psnrVideo(original, recon);
}

LossStats
measureQualityLoss(const Video &original, const EncodeResult &enc,
                   const BitRangeSet &targets, double error_rate,
                   int runs, Rng &rng)
{
    LossStats stats;
    if (targets.empty())
        return stats;

    const double reference = cleanPsnr(original, enc);
    const u64 n = targets.totalBits();
    const double expected_errors =
        static_cast<double>(n) * error_rate;

    // Section 6.4 low-rate regime: inject exactly one error and
    // scale the loss by P(any error in the video).
    const bool scaled_mode = expected_errors < 1.0;
    const double scale =
        scaled_mode ? -std::expm1(static_cast<double>(n) *
                                  std::log1p(-error_rate))
                    : 1.0;

    // Trials run in parallel. Each trial's seed is drawn from the
    // caller's generator *before* the loop, and per-trial losses are
    // reduced in trial order afterwards, so the result is
    // bit-identical no matter how many threads execute it (and the
    // caller's rng advances by exactly `runs` draws either way).
    std::vector<u64> seeds(static_cast<std::size_t>(runs));
    for (u64 &s : seeds)
        s = rng.next();

    std::vector<double> losses(static_cast<std::size_t>(runs), 0.0);
    parallelFor(static_cast<std::size_t>(runs), [&](std::size_t run) {
        VA_TELEM_SCOPE("sim.trial");
        Rng trial_rng(seeds[run]);
        std::vector<Bytes> payloads = enc.video.payloads;
        u64 flips = 0;
        if (scaled_mode) {
            u64 flat = trial_rng.nextBelow(n);
            auto [frame, bit] = targets.locate(flat);
            if (frame < payloads.size())
                flipBit(payloads[frame], bit);
            flips = 1;
        } else {
            flips = corruptPayloads(payloads, targets, error_rate,
                                    trial_rng)
                        .size();
        }
        VA_TELEM_COUNT("sim.trials", 1);
        VA_TELEM_COUNT("sim.bits_flipped", flips);
        VA_TELEM_COUNT("sim.payload_bytes_processed",
                       enc.video.payloadBits() / 8);
        Video decoded = decodeWithPayloads(enc, std::move(payloads));
        double psnr = psnrVideo(original, decoded);
        losses[run] = std::max(reference - psnr, 0.0) * scale;
    });

    double total = 0.0;
    for (double loss : losses) {
        total += loss;
        stats.maxLossDb = std::max(stats.maxLossDb, loss);
        ++stats.runs;
    }
    stats.meanLossDb = stats.runs ? total / stats.runs : 0.0;
    return stats;
}

} // namespace videoapp
