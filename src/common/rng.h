/**
 * @file
 * Deterministic pseudo-random number generation for simulation.
 *
 * All stochastic components (PCM error injection, Monte Carlo runs,
 * synthetic video generation) draw from explicitly seeded Rng instances
 * so every experiment is reproducible from its seed.
 */

#ifndef VIDEOAPP_COMMON_RNG_H_
#define VIDEOAPP_COMMON_RNG_H_

#include <cstdint>

#include "common/types.h"

namespace videoapp {

/**
 * xoshiro256** generator. Small, fast, and high quality; seeded through
 * splitmix64 so any 64-bit seed yields a well-mixed state.
 */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    u64 next();

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    u64 nextBelow(u64 bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Standard normal variate (Box-Muller, cached pair). */
    double nextGaussian();

    /** Bernoulli trial with probability @p p. */
    bool nextBool(double p);

    /**
     * Binomial sample: number of successes in @p n trials with success
     * probability @p p. Uses exact inversion for small n*p and a
     * normal approximation with continuity correction for large ones,
     * which is the regime of bit-error counts over multi-megabit
     * streams (Section 6.4 of the paper).
     */
    u64 nextBinomial(u64 n, double p);

    /** Derive an independent generator (for per-run streams). */
    Rng split();

    /**
     * Deterministically mix a @p master seed with a @p stream index
     * into an independent child seed. Unlike split(), this does not
     * consume generator state, so trial i's seed is the same whether
     * trials run sequentially or in parallel — the basis of the
     * parallel runner's bit-identical-to-sequential guarantee.
     */
    static u64 deriveSeed(u64 master, u64 stream);

    /** Child generator seeded with deriveSeed(master, stream). */
    static Rng forStream(u64 master, u64 stream);

  private:
    u64 s_[4];
    double cachedGauss_ = 0.0;
    bool hasGauss_ = false;
};

} // namespace videoapp

#endif // VIDEOAPP_COMMON_RNG_H_
