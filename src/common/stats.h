/**
 * @file
 * Small statistics helpers used by the experiment harness.
 */

#ifndef VIDEOAPP_COMMON_STATS_H_
#define VIDEOAPP_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace videoapp {

/** Online accumulator for mean / min / max / variance. */
class RunningStats
{
  public:
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? sum_ / n_ : 0.0; }
    double min() const { return min_; }
    double max() const { return max_; }

    /** Sample variance (n-1 denominator); 0 for fewer than 2 samples. */
    double variance() const;
    double stddev() const;

  private:
    std::size_t n_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = 1e300;
    double max_ = -1e300;
};

/**
 * Binomial tail P(X > t) for X ~ Binomial(n, p), computed in log space
 * so rates as small as 1e-30 are representable. This is the analytic
 * uncorrectable-error model behind Figure 8.
 */
double binomialTailAbove(int n, double p, int t);

/** log(n choose k) via lgamma. */
double logChoose(int n, int k);

/** Arithmetic mean of a vector (0 for empty input). */
double mean(const std::vector<double> &xs);

} // namespace videoapp

#endif // VIDEOAPP_COMMON_STATS_H_
