#include "common/telemetry.h"

#include <cinttypes>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

namespace videoapp {
namespace telemetry {

unsigned
currentShard()
{
    static std::atomic<unsigned> next{0};
    thread_local unsigned shard =
        next.fetch_add(1, std::memory_order_relaxed) %
        kCounterShards;
    return shard;
}

namespace {

/** Append @p indent spaces to @p out. */
void
pad(std::string &out, int indent)
{
    out.append(static_cast<std::size_t>(indent > 0 ? indent : 0),
               ' ');
}

/** Append a JSON string literal (metric names need no escaping). */
void
appendQuoted(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
}

void
appendU64(std::string &out, u64 v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    out += buf;
}

/** Fixed-point seconds: deterministic formatting across platforms. */
void
appendSeconds(std::string &out, double s)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9f", s);
    out += buf;
}

} // namespace

/**
 * Metric storage. Maps are keyed by name; entries are allocated
 * once and never removed, so references handed out by the lookup
 * functions stay valid until the registry is destroyed.
 */
template <bool Enabled> class BasicRegistryImpl
{
  public:
    std::mutex mutex;
    std::map<std::string, std::unique_ptr<BasicCounter<Enabled>>,
             std::less<>>
        counters;
    std::map<std::string, std::unique_ptr<BasicTimer<Enabled>>,
             std::less<>>
        timers;
    std::map<std::string, std::unique_ptr<BasicHistogram<Enabled>>,
             std::less<>>
        histograms;

    template <typename Map>
    auto &
    intern(Map &map, std::string_view name)
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = map.find(name);
        if (it == map.end()) {
            it = map.emplace(std::string(name),
                             std::make_unique<
                                 typename Map::mapped_type::
                                     element_type>())
                     .first;
        }
        return *it->second;
    }
};

template <bool Enabled>
BasicRegistry<Enabled>::BasicRegistry()
    : impl_(new BasicRegistryImpl<Enabled>)
{
}

template <bool Enabled> BasicRegistry<Enabled>::~BasicRegistry()
{
    delete impl_;
}

template <bool Enabled>
BasicCounter<Enabled> &
BasicRegistry<Enabled>::counter(std::string_view name)
{
    return impl_->intern(impl_->counters, name);
}

template <bool Enabled>
BasicTimer<Enabled> &
BasicRegistry<Enabled>::timer(std::string_view name)
{
    return impl_->intern(impl_->timers, name);
}

template <bool Enabled>
BasicHistogram<Enabled> &
BasicRegistry<Enabled>::histogram(std::string_view name)
{
    return impl_->intern(impl_->histograms, name);
}

template <bool Enabled>
void
BasicRegistry<Enabled>::resetAll()
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (auto &entry : impl_->counters)
        entry.second->reset();
    for (auto &entry : impl_->timers)
        entry.second->reset();
    for (auto &entry : impl_->histograms)
        entry.second->reset();
}

template <bool Enabled>
std::string
BasicRegistry<Enabled>::snapshotJson(int indent) const
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    std::string out;
    out += "{\n";
    pad(out, indent + 2);
    out += "\"schema_version\": ";
    appendU64(out, static_cast<u64>(kSchemaVersion));
    out += ",\n";

    // Counters.
    pad(out, indent + 2);
    out += "\"counters\": {";
    bool first = true;
    for (const auto &[name, c] : impl_->counters) {
        out += first ? "\n" : ",\n";
        first = false;
        pad(out, indent + 4);
        appendQuoted(out, name);
        out += ": ";
        appendU64(out, c->value());
    }
    if (!first) {
        out += '\n';
        pad(out, indent + 2);
    }
    out += "},\n";

    // Timers.
    pad(out, indent + 2);
    out += "\"timers\": {";
    first = true;
    for (const auto &[name, t] : impl_->timers) {
        out += first ? "\n" : ",\n";
        first = false;
        pad(out, indent + 4);
        appendQuoted(out, name);
        out += ": {\"calls\": ";
        appendU64(out, t->calls());
        out += ", \"total_s\": ";
        appendSeconds(out, t->totalSeconds());
        out += "}";
    }
    if (!first) {
        out += '\n';
        pad(out, indent + 2);
    }
    out += "},\n";

    // Histograms (only non-empty buckets, ascending bounds).
    pad(out, indent + 2);
    out += "\"histograms\": {";
    first = true;
    for (const auto &[name, h] : impl_->histograms) {
        out += first ? "\n" : ",\n";
        first = false;
        pad(out, indent + 4);
        appendQuoted(out, name);
        out += ": {\"count\": ";
        appendU64(out, h->count());
        out += ", \"sum\": ";
        appendU64(out, h->sum());
        out += ", \"buckets\": [";
        bool first_bucket = true;
        for (int b = 0; b < BasicHistogram<Enabled>::kBuckets;
             ++b) {
            u64 n = h->bucketCount(b);
            if (!n)
                continue;
            if (!first_bucket)
                out += ", ";
            first_bucket = false;
            out += "{\"le\": ";
            appendU64(
                out,
                BasicHistogram<Enabled>::bucketUpperBound(b));
            out += ", \"count\": ";
            appendU64(out, n);
            out += "}";
        }
        out += "]}";
    }
    if (!first) {
        out += '\n';
        pad(out, indent + 2);
    }
    out += "}\n";
    pad(out, indent);
    out += "}";
    return out;
}

template class BasicRegistry<true>;
template class BasicRegistry<false>;

Registry &
globalRegistry()
{
    static Registry registry;
    return registry;
}

} // namespace telemetry
} // namespace videoapp
