/**
 * @file
 * Process-wide telemetry: lock-sharded counters, monotonic stage
 * timers and log-bucketed histograms behind a registry that
 * snapshots to schema-versioned JSON with a stable key order.
 *
 * Everything is built twice via a bool template parameter:
 * BasicCounter<true> is the real sharded-atomic implementation,
 * BasicCounter<false> is an empty no-op (and likewise for the
 * histogram, timer and registry). The build-wide alias
 * telemetry::Counter etc. picks the variant selected by the
 * VIDEOAPP_TELEMETRY compile definition, while tests can
 * instantiate either variant explicitly regardless of build mode.
 *
 * Instrumentation sites use the VA_TELEM_* macros, which cache the
 * registry lookup in a function-local static and compile to nothing
 * when telemetry is disabled — a disabled build carries no clock
 * reads, no atomics and no registry references on any hot path.
 *
 * Hot-path cost when enabled: one relaxed fetch_add on a
 * thread-sharded cache line per counter bump, two steady_clock
 * reads per timed scope. All operations are thread safe; counter
 * totals are exact (increments are never lost), which is what the
 * concurrent-sum tests assert.
 *
 * Snapshot JSON schema (see DESIGN.md for the metric inventory):
 *   {
 *     "schema_version": 1,
 *     "counters":   { "<name>": <u64>, ... },
 *     "timers":     { "<name>": {"calls": <u64>,
 *                                "total_s": <double>}, ... },
 *     "histograms": { "<name>": {"count": <u64>, "sum": <u64>,
 *                                "buckets": [{"le": <u64>,
 *                                             "count": <u64>}]} }
 *   }
 * Keys are emitted in sorted order and histogram buckets in
 * ascending bound order, so two snapshots of equal metric values
 * are byte-identical strings no matter how many threads produced
 * them.
 */

#ifndef VIDEOAPP_COMMON_TELEMETRY_H_
#define VIDEOAPP_COMMON_TELEMETRY_H_

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

#include "common/types.h"

/** Compile-time master switch; the build system sets it to 0/1. */
#ifndef VIDEOAPP_TELEMETRY
#define VIDEOAPP_TELEMETRY 1
#endif

namespace videoapp {
namespace telemetry {

constexpr bool kEnabled = VIDEOAPP_TELEMETRY != 0;

/** Current snapshot JSON schema version. */
constexpr int kSchemaVersion = 1;

/** Number of independent counter shards (power of two). */
constexpr unsigned kCounterShards = 16;

/** Stable small id for the calling thread's counter shard. */
unsigned currentShard();

// --- counters ----------------------------------------------------------

template <bool Enabled> class BasicCounter;

/**
 * Monotonic event counter sharded across kCounterShards cache-line
 * padded atomics: concurrent add()s from parallelFor workers land
 * on (mostly) distinct lines and never lose increments.
 */
template <> class BasicCounter<true>
{
  public:
    void
    add(u64 delta = 1)
    {
        shards_[currentShard()].v.fetch_add(
            delta, std::memory_order_relaxed);
    }

    /** Sum over all shards (exact once concurrent adders finished). */
    u64
    value() const
    {
        u64 total = 0;
        for (const Shard &s : shards_)
            total += s.v.load(std::memory_order_relaxed);
        return total;
    }

    void
    reset()
    {
        for (Shard &s : shards_)
            s.v.store(0, std::memory_order_relaxed);
    }

  private:
    struct alignas(64) Shard
    {
        std::atomic<u64> v{0};
    };
    Shard shards_[kCounterShards];
};

/** Disabled counter: every operation is a no-op, value() is 0. */
template <> class BasicCounter<false>
{
  public:
    void add(u64 = 1) {}
    u64 value() const { return 0; }
    void reset() {}
};

using Counter = BasicCounter<kEnabled>;

// --- histograms --------------------------------------------------------

template <bool Enabled> class BasicHistogram;

/**
 * Log-bucketed histogram of u64 samples. Bucket 0 holds exact
 * zeros; bucket b >= 1 holds values in [2^(b-1), 2^b - 1], i.e.
 * bucket index = std::bit_width(value). 65 buckets cover the full
 * u64 range.
 */
template <> class BasicHistogram<true>
{
  public:
    static constexpr int kBuckets = 65;

    /** Bucket index a value falls into. */
    static int
    bucketOf(u64 value)
    {
        return std::bit_width(value);
    }

    /** Inclusive upper bound of bucket @p b. */
    static u64
    bucketUpperBound(int b)
    {
        if (b <= 0)
            return 0;
        if (b >= 64)
            return std::numeric_limits<u64>::max();
        return (u64{1} << b) - 1;
    }

    void
    record(u64 value)
    {
        buckets_[bucketOf(value)].fetch_add(
            1, std::memory_order_relaxed);
        sum_.fetch_add(value, std::memory_order_relaxed);
    }

    u64
    bucketCount(int b) const
    {
        return buckets_[b].load(std::memory_order_relaxed);
    }

    /** Total number of recorded samples. */
    u64
    count() const
    {
        u64 total = 0;
        for (const auto &b : buckets_)
            total += b.load(std::memory_order_relaxed);
        return total;
    }

    /** Sum of all recorded samples (mod 2^64). */
    u64 sum() const { return sum_.load(std::memory_order_relaxed); }

    void
    reset()
    {
        for (auto &b : buckets_)
            b.store(0, std::memory_order_relaxed);
        sum_.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<u64> buckets_[kBuckets] = {};
    std::atomic<u64> sum_{0};
};

/** Disabled histogram: no storage, no-ops, zero values. */
template <> class BasicHistogram<false>
{
  public:
    static constexpr int kBuckets = 65;
    static int bucketOf(u64) { return 0; }
    static u64 bucketUpperBound(int) { return 0; }
    void record(u64) {}
    u64 bucketCount(int) const { return 0; }
    u64 count() const { return 0; }
    u64 sum() const { return 0; }
    void reset() {}
};

using Histogram = BasicHistogram<kEnabled>;

// --- timers ------------------------------------------------------------

template <bool Enabled> class BasicTimer;

/**
 * Accumulating wall-clock timer (monotonic clock): total
 * nanoseconds and number of timed scopes. Concurrent scopes from
 * worker threads accumulate independently via the sharded counters.
 */
template <> class BasicTimer<true>
{
  public:
    void
    add(u64 nanoseconds)
    {
        totalNs_.add(nanoseconds);
        calls_.add(1);
    }

    u64 calls() const { return calls_.value(); }
    u64 totalNanoseconds() const { return totalNs_.value(); }

    double
    totalSeconds() const
    {
        return static_cast<double>(totalNs_.value()) * 1e-9;
    }

    void
    reset()
    {
        totalNs_.reset();
        calls_.reset();
    }

  private:
    BasicCounter<true> totalNs_;
    BasicCounter<true> calls_;
};

/** Disabled timer: no-ops and zero values. */
template <> class BasicTimer<false>
{
  public:
    void add(u64) {}
    u64 calls() const { return 0; }
    u64 totalNanoseconds() const { return 0; }
    double totalSeconds() const { return 0.0; }
    void reset() {}
};

using Timer = BasicTimer<kEnabled>;

template <bool Enabled> class BasicScopedTimer;

/** RAII scope: adds the scope's wall time to a timer on exit. */
template <> class BasicScopedTimer<true>
{
  public:
    explicit BasicScopedTimer(BasicTimer<true> &timer)
        : timer_(timer), start_(std::chrono::steady_clock::now())
    {
    }

    BasicScopedTimer(const BasicScopedTimer &) = delete;
    BasicScopedTimer &operator=(const BasicScopedTimer &) = delete;

    ~BasicScopedTimer()
    {
        auto ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start_)
                .count();
        timer_.add(ns > 0 ? static_cast<u64>(ns) : 0);
    }

  private:
    BasicTimer<true> &timer_;
    std::chrono::steady_clock::time_point start_;
};

/** Disabled scope: no clock reads, no state. */
template <> class BasicScopedTimer<false>
{
  public:
    explicit BasicScopedTimer(BasicTimer<false> &) {}
};

using ScopedTimer = BasicScopedTimer<kEnabled>;

template <bool Enabled> class BasicScopedLatency;

/**
 * RAII scope that records its wall time in MICROSECONDS into a
 * histogram on exit — the latency-distribution counterpart of
 * ScopedTimer's totals, used for per-operation service latencies
 * (archive put/get/scrub) where the shape matters, not just the sum.
 */
template <> class BasicScopedLatency<true>
{
  public:
    explicit BasicScopedLatency(BasicHistogram<true> &hist)
        : hist_(hist), start_(std::chrono::steady_clock::now())
    {
    }

    BasicScopedLatency(const BasicScopedLatency &) = delete;
    BasicScopedLatency &operator=(const BasicScopedLatency &) = delete;

    ~BasicScopedLatency()
    {
        auto us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start_)
                .count();
        hist_.record(us > 0 ? static_cast<u64>(us) : 0);
    }

  private:
    BasicHistogram<true> &hist_;
    std::chrono::steady_clock::time_point start_;
};

/** Disabled scope: no clock reads, no state. */
template <> class BasicScopedLatency<false>
{
  public:
    explicit BasicScopedLatency(BasicHistogram<false> &) {}
};

using ScopedLatency = BasicScopedLatency<kEnabled>;

// --- registry ----------------------------------------------------------

template <bool Enabled> class BasicRegistryImpl;

/**
 * Named metric registry. Lookup interns the metric under its name
 * (creating it on first use) and returns a stable reference;
 * references stay valid for the registry's lifetime, so call sites
 * cache them in a static (the VA_TELEM_* macros do). Lookup takes
 * a mutex — cache the reference, don't look up per event.
 */
template <bool Enabled> class BasicRegistry
{
  public:
    BasicRegistry();
    ~BasicRegistry();
    BasicRegistry(const BasicRegistry &) = delete;
    BasicRegistry &operator=(const BasicRegistry &) = delete;

    BasicCounter<Enabled> &counter(std::string_view name);
    BasicTimer<Enabled> &timer(std::string_view name);
    BasicHistogram<Enabled> &histogram(std::string_view name);

    /** Zero every registered metric (names stay registered). */
    void resetAll();

    /**
     * Serialize every registered metric to the schema documented at
     * the top of this header. @p indent prefixes every line with
     * that many spaces (for embedding into an enclosing document);
     * the result has no trailing newline.
     */
    std::string snapshotJson(int indent = 0) const;

  private:
    BasicRegistryImpl<Enabled> *impl_;
};

extern template class BasicRegistry<true>;
extern template class BasicRegistry<false>;

using Registry = BasicRegistry<kEnabled>;

/** The process-wide registry the VA_TELEM_* macros record into. */
Registry &globalRegistry();

} // namespace telemetry
} // namespace videoapp

// --- instrumentation macros --------------------------------------------

#define VA_TELEM_CAT2_(a, b) a##b
#define VA_TELEM_CAT_(a, b) VA_TELEM_CAT2_(a, b)

#if VIDEOAPP_TELEMETRY

/** Emit the wrapped declarations/statements only when enabled. */
#define VA_TELEM_ONLY(...) __VA_ARGS__

/** Bump the named process-wide counter by @p delta. */
#define VA_TELEM_COUNT(name, delta)                                    \
    do {                                                               \
        static ::videoapp::telemetry::Counter &va_telem_counter_ =     \
            ::videoapp::telemetry::globalRegistry().counter(name);     \
        va_telem_counter_.add(delta);                                  \
    } while (0)

/** Time the rest of the enclosing scope into the named timer. */
#define VA_TELEM_SCOPE(name)                                           \
    static ::videoapp::telemetry::Timer &VA_TELEM_CAT_(                \
        va_telem_timer_, __LINE__) =                                   \
        ::videoapp::telemetry::globalRegistry().timer(name);           \
    ::videoapp::telemetry::ScopedTimer VA_TELEM_CAT_(                  \
        va_telem_scope_, __LINE__)(                                    \
        VA_TELEM_CAT_(va_telem_timer_, __LINE__))

/** Record @p value into the named histogram. */
#define VA_TELEM_HIST(name, value)                                     \
    do {                                                               \
        static ::videoapp::telemetry::Histogram                        \
            &va_telem_hist_ =                                          \
                ::videoapp::telemetry::globalRegistry().histogram(     \
                    name);                                             \
        va_telem_hist_.record(value);                                  \
    } while (0)

/** Record the rest of the enclosing scope's wall time, in
 * microseconds, into the named latency histogram. */
#define VA_TELEM_LATENCY(name)                                         \
    static ::videoapp::telemetry::Histogram &VA_TELEM_CAT_(            \
        va_telem_lat_hist_, __LINE__) =                                \
        ::videoapp::telemetry::globalRegistry().histogram(name);       \
    ::videoapp::telemetry::ScopedLatency VA_TELEM_CAT_(                \
        va_telem_lat_scope_, __LINE__)(                                \
        VA_TELEM_CAT_(va_telem_lat_hist_, __LINE__))

#else

#define VA_TELEM_ONLY(...)

// The never-taken branch keeps operands type-checked (and their
// variables "used" under -Werror) while the optimizer removes the
// expressions entirely — no clocks, atomics or registry references
// survive in a disabled build.
#define VA_TELEM_COUNT(name, delta)                                    \
    do {                                                               \
        if (false) {                                                   \
            (void)(name);                                              \
            (void)(delta);                                             \
        }                                                              \
    } while (0)
#define VA_TELEM_SCOPE(name)                                           \
    do {                                                               \
        if (false)                                                     \
            (void)(name);                                              \
    } while (0)
#define VA_TELEM_HIST(name, value)                                     \
    do {                                                               \
        if (false) {                                                   \
            (void)(name);                                              \
            (void)(value);                                             \
        }                                                              \
    } while (0)
#define VA_TELEM_LATENCY(name)                                         \
    do {                                                               \
        if (false)                                                     \
            (void)(name);                                              \
    } while (0)

#endif // VIDEOAPP_TELEMETRY

#endif // VIDEOAPP_COMMON_TELEMETRY_H_
