#include "common/crc32.h"

#include <array>

namespace videoapp {

namespace {

std::array<u32, 256>
buildTable()
{
    std::array<u32, 256> table{};
    for (u32 i = 0; i < 256; ++i) {
        u32 c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

const std::array<u32, 256> &
table()
{
    static const std::array<u32, 256> t = buildTable();
    return t;
}

} // namespace

u32
crc32Update(u32 crc, const u8 *data, std::size_t size)
{
    const auto &t = table();
    crc = ~crc;
    for (std::size_t i = 0; i < size; ++i)
        crc = t[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
    return ~crc;
}

u32
crc32(const u8 *data, std::size_t size)
{
    return crc32Update(0, data, size);
}

u32
crc32(const Bytes &data)
{
    return crc32(data.data(), data.size());
}

} // namespace videoapp
