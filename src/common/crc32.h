/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for the
 * integrity fields of the VAPP archive container. Covers only the
 * precisely stored metadata — approximate payloads are deliberately
 * left unchecksummed, since degrading them is the point.
 */

#ifndef VIDEOAPP_COMMON_CRC32_H_
#define VIDEOAPP_COMMON_CRC32_H_

#include <cstddef>

#include "common/types.h"

namespace videoapp {

/** CRC-32 of @p size bytes at @p data (init/final XOR 0xFFFFFFFF). */
u32 crc32(const u8 *data, std::size_t size);

/** Convenience overload over a byte vector. */
u32 crc32(const Bytes &data);

/**
 * Incremental form: continue a CRC over a further chunk. Start with
 * @p crc = 0 and feed chunks in order; equals the one-shot value.
 */
u32 crc32Update(u32 crc, const u8 *data, std::size_t size);

} // namespace videoapp

#endif // VIDEOAPP_COMMON_CRC32_H_
