#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace videoapp {

void
RunningStats::add(double x)
{
    ++n_;
    sum_ += x;
    sumSq_ += x * x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    double m = mean();
    double v = (sumSq_ - n_ * m * m) / (n_ - 1);
    return v > 0.0 ? v : 0.0;
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
logChoose(int n, int k)
{
    return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) -
           std::lgamma(n - k + 1.0);
}

double
binomialTailAbove(int n, double p, int t)
{
    if (p <= 0.0)
        return 0.0;
    if (p >= 1.0)
        return t < n ? 1.0 : 0.0;
    if (t >= n)
        return 0.0;
    if (t < 0)
        return 1.0;

    double lp = std::log(p);
    double lq = std::log1p(-p);

    // Sum P(X = k) for k in (t, n]. Terms decay geometrically once k
    // is past the mean, so stop when a term no longer contributes.
    double total = 0.0;
    for (int k = t + 1; k <= n; ++k) {
        double lterm = logChoose(n, k) + k * lp + (n - k) * lq;
        double term = std::exp(lterm);
        total += term;
        if (term < total * 1e-18 && k > static_cast<int>(n * p) + 1)
            break;
    }
    return std::min(total, 1.0);
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / xs.size();
}

} // namespace videoapp
