#include "common/parallel.h"

#include "common/telemetry.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace videoapp {

namespace {

/** True on pool worker threads; nested parallelFor runs inline. */
thread_local bool t_in_worker = false;

int
defaultThreadCount()
{
    if (const char *env = std::getenv("VIDEOAPP_THREADS")) {
        int n = std::atoi(env);
        if (n >= 1)
            return n;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

/**
 * One parallelFor invocation: a dynamically chunked index range the
 * workers and the caller drain together.
 */
struct Job
{
    std::size_t n = 0;
    std::size_t chunk = 1;
    const std::function<void(std::size_t)> *fn = nullptr;
    std::atomic<std::size_t> next{0};
    std::exception_ptr error;
    std::mutex errorMutex;

    /** Claim and execute chunks until the range is exhausted. */
    void
    runSlice()
    {
        bool was_worker = t_in_worker;
        t_in_worker = true;
        for (;;) {
            std::size_t begin = next.fetch_add(chunk);
            if (begin >= n)
                break;
            std::size_t end = std::min(begin + chunk, n);
            try {
                for (std::size_t i = begin; i < end; ++i)
                    (*fn)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!error)
                    error = std::current_exception();
            }
        }
        t_in_worker = was_worker;
    }
};

class ThreadPool
{
  public:
    explicit ThreadPool(int threads)
    {
        for (int i = 0; i + 1 < threads; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        wake_.notify_all();
        for (auto &w : workers_)
            w.join();
    }

    int size() const { return static_cast<int>(workers_.size()) + 1; }

    void
    run(Job &job)
    {
        // One top-level parallelFor at a time; concurrent callers
        // queue here (nested calls never reach run()).
        VA_TELEM_ONLY(auto va_wait_start =
                          std::chrono::steady_clock::now();)
        std::lock_guard<std::mutex> run_lock(runMutex_);
        VA_TELEM_ONLY(VA_TELEM_HIST(
            "parallel.queue_wait_ns",
            static_cast<u64>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - va_wait_start)
                    .count()));)
        {
            std::lock_guard<std::mutex> lock(mutex_);
            job_ = &job;
            ++generation_;
        }
        wake_.notify_all();
        job.runSlice(); // the caller is worker 0
        // The caller's slice only returns once every chunk is
        // claimed; wait for workers still running theirs. active_
        // is mutated under mutex_, so once it reaches zero no
        // worker holds a pointer to the (stack-allocated) job.
        std::unique_lock<std::mutex> lock(mutex_);
        idle_.wait(lock, [&] { return active_ == 0; });
        job_ = nullptr;
    }

  private:
    void
    workerLoop()
    {
        std::uint64_t seen = 0;
        for (;;) {
            Job *job = nullptr;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                wake_.wait(lock, [&] {
                    return stop_ || (job_ && generation_ != seen);
                });
                if (stop_)
                    return;
                job = job_;
                seen = generation_;
                ++active_;
            }
            job->runSlice();
            {
                std::lock_guard<std::mutex> lock(mutex_);
                --active_;
            }
            idle_.notify_all();
        }
    }

    std::vector<std::thread> workers_;
    std::mutex runMutex_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable idle_;
    Job *job_ = nullptr;
    std::uint64_t generation_ = 0;
    int active_ = 0;
    bool stop_ = false;
};

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;
int g_requested_threads = 0; // 0 = resolve from env/hardware

ThreadPool &
pool()
{
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    int want = g_requested_threads >= 1 ? g_requested_threads
                                        : defaultThreadCount();
    if (!g_pool || g_pool->size() != want)
        g_pool = std::make_unique<ThreadPool>(want);
    return *g_pool;
}

} // namespace

int
threadCount()
{
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    return g_requested_threads >= 1 ? g_requested_threads
                                    : defaultThreadCount();
}

void
setThreadCount(int n)
{
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    g_requested_threads = n >= 1 ? n : 0;
    g_pool.reset(); // relaunched at the right size on next use
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (n == 1 || t_in_worker || threadCount() == 1) {
        bool was_worker = t_in_worker;
        t_in_worker = true; // inline nested loops below this one too
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        t_in_worker = was_worker;
        VA_TELEM_COUNT("parallel.loops_inline", 1);
        VA_TELEM_COUNT("parallel.tasks_dispatched", n);
        return;
    }

    VA_TELEM_COUNT("parallel.loops_pooled", 1);
    VA_TELEM_COUNT("parallel.tasks_dispatched", n);
    ThreadPool &p = pool();
    Job job;
    job.n = n;
    // ~8 chunks per thread balances uneven work without contending
    // on the shared counter.
    job.chunk = std::max<std::size_t>(
        1, n / (static_cast<std::size_t>(p.size()) * 8));
    job.fn = &fn;
    p.run(job);
    if (job.error)
        std::rethrow_exception(job.error);
}

} // namespace videoapp
