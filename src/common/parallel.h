/**
 * @file
 * Fixed-size thread pool and the parallelFor primitive behind the
 * Monte Carlo trial loops, per-stream storage, and per-frame
 * importance analysis.
 *
 * The pool is process-wide and lazy: the first parallelFor spins up
 * threadCount() - 1 workers (the calling thread also executes work).
 * The thread count comes from VIDEOAPP_THREADS when set, otherwise
 * std::thread::hardware_concurrency(); benches override it with
 * setThreadCount().
 *
 * Determinism contract: parallelFor partitions [0, n) dynamically,
 * so callers must make each index's work independent of execution
 * order — draw per-index RNG seeds *before* the loop (see
 * Rng::forStream) and reduce results from an index-addressed buffer
 * *after* it. Every parallelized loop in this repo follows that
 * pattern, which is why parallel runs are bit-identical to
 * sequential ones.
 *
 * Nested parallelFor calls execute inline on the calling worker, so
 * composed layers (e.g. parallel trials each calling the
 * parallel-per-stream storeAndRetrieve) cannot deadlock the pool.
 */

#ifndef VIDEOAPP_COMMON_PARALLEL_H_
#define VIDEOAPP_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace videoapp {

/**
 * Worker threads used by parallelFor: VIDEOAPP_THREADS if set (>= 1),
 * else hardware_concurrency(), never less than 1.
 */
int threadCount();

/**
 * Override the pool size (tears down and relaunches the pool).
 * @p n < 1 resets to the environment/hardware default. Must not be
 * called concurrently with parallelFor.
 */
void setThreadCount(int n);

/**
 * Run fn(i) for every i in [0, n). Blocks until all indices finish.
 * Executes inline when the pool has one thread, n <= 1, or the
 * caller is itself a pool worker (nested loop). The first exception
 * thrown by fn is rethrown on the calling thread after the loop
 * drains.
 */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &fn);

} // namespace videoapp

#endif // VIDEOAPP_COMMON_PARALLEL_H_
