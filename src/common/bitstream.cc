#include "common/bitstream.h"

namespace videoapp {

void
flipBit(Bytes &bytes, BitPos pos)
{
    std::size_t byte = pos >> 3;
    if (byte >= bytes.size())
        return;
    bytes[byte] ^= static_cast<u8>(0x80u >> (pos & 7));
}

u32
getBit(const Bytes &bytes, BitPos pos)
{
    std::size_t byte = pos >> 3;
    if (byte >= bytes.size())
        return 0;
    return (bytes[byte] >> (7 - (pos & 7))) & 1u;
}

} // namespace videoapp
