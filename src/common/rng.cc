#include "common/rng.h"

#include <cmath>

namespace videoapp {

namespace {

u64
splitmix64(u64 &x)
{
    x += 0x9E3779B97F4A7C15ull;
    u64 z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

u64
rotl(u64 x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(u64 seed)
{
    u64 x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

u64
Rng::next()
{
    u64 result = rotl(s_[1] * 5, 7) * 9;
    u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

u64
Rng::nextBelow(u64 bound)
{
    // Rejection sampling to avoid modulo bias.
    u64 threshold = (~bound + 1) % bound;
    for (;;) {
        u64 r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::nextGaussian()
{
    if (hasGauss_) {
        hasGauss_ = false;
        return cachedGauss_;
    }
    double u1, u2;
    do {
        u1 = nextDouble();
    } while (u1 <= 0.0);
    u2 = nextDouble();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cachedGauss_ = r * std::sin(theta);
    hasGauss_ = true;
    return r * std::cos(theta);
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

u64
Rng::nextBinomial(u64 n, double p)
{
    if (p <= 0.0 || n == 0)
        return 0;
    if (p >= 1.0)
        return n;

    double mean = static_cast<double>(n) * p;
    if (mean < 32.0) {
        // Inversion by sequential search over the CDF; exact and fast
        // for the small-mean regime typical of low error rates.
        double q = 1.0 - p;
        double pmf = std::pow(q, static_cast<double>(n));
        if (pmf <= 0.0) {
            // Underflow guard for huge n with tiny p: fall back to a
            // Poisson approximation, valid in exactly that regime.
            double l = std::exp(-mean);
            u64 k = 0;
            double prod = nextDouble();
            while (prod > l && k < n) {
                ++k;
                prod *= nextDouble();
            }
            return k;
        }
        double cdf = pmf;
        double u = nextDouble();
        u64 k = 0;
        while (u > cdf && k < n) {
            ++k;
            pmf *= (static_cast<double>(n - k + 1) / k) * (p / q);
            cdf += pmf;
        }
        return k;
    }

    // Normal approximation with continuity correction.
    double sd = std::sqrt(mean * (1.0 - p));
    for (;;) {
        double x = mean + sd * nextGaussian() + 0.5;
        if (x < 0.0)
            continue;
        u64 k = static_cast<u64>(x);
        if (k <= n)
            return k;
    }
}

Rng
Rng::split()
{
    return Rng(next());
}

u64
Rng::deriveSeed(u64 master, u64 stream)
{
    // Two rounds of splitmix64 over the (master, stream) pair: the
    // finalizer is bijective per round, so distinct streams under
    // one master never collide after the first round, and the
    // second decorrelates nearby masters.
    u64 x = master;
    u64 h = splitmix64(x); // advances x
    x ^= (stream + 1) * 0xBF58476D1CE4E5B9ull;
    return splitmix64(x) ^ h;
}

Rng
Rng::forStream(u64 master, u64 stream)
{
    return Rng(deriveSeed(master, stream));
}

} // namespace videoapp
