/**
 * @file
 * Bit-granular writer and reader over a byte buffer.
 *
 * The codec's entropy coders and the storage layer both operate on bit
 * positions inside encoded streams; these classes are the single place
 * where bit order is defined. Bit 0 of a stream is the most significant
 * bit of byte 0, matching the big-endian bit order used by H.264
 * bitstreams.
 */

#ifndef VIDEOAPP_COMMON_BITSTREAM_H_
#define VIDEOAPP_COMMON_BITSTREAM_H_

#include <cassert>
#include <cstddef>

#include "common/types.h"

namespace videoapp {

/**
 * Append-only bit writer. Bits are packed MSB-first into a growing byte
 * vector.
 */
class BitWriter
{
  public:
    BitWriter() = default;

    /** Append the @p count low-order bits of @p value, MSB first. */
    void
    writeBits(u32 value, int count)
    {
        assert(count >= 0 && count <= 32);
        for (int i = count - 1; i >= 0; --i)
            writeBit((value >> i) & 1u);
    }

    /** Append a single bit (0 or 1). */
    void
    writeBit(u32 bit)
    {
        if (bitPos_ == 0)
            buf_.push_back(0);
        if (bit)
            buf_.back() |= static_cast<u8>(0x80u >> bitPos_);
        bitPos_ = (bitPos_ + 1) & 7;
    }

    /** Pad with zero bits up to the next byte boundary. */
    void
    alignToByte()
    {
        bitPos_ = 0;
    }

    /** Number of bits written so far. */
    std::size_t
    bitCount() const
    {
        return bitPos_ == 0 ? buf_.size() * 8
                            : (buf_.size() - 1) * 8 + bitPos_;
    }

    /** Steal the accumulated bytes; the writer is reset. */
    Bytes
    take()
    {
        bitPos_ = 0;
        Bytes out;
        out.swap(buf_);
        return out;
    }

    const Bytes &bytes() const { return buf_; }

  private:
    Bytes buf_;
    int bitPos_ = 0;
};

/**
 * Bounded bit reader. Reading past the end is well defined and returns
 * zero bits: a decoder driven by a corrupted stream must never fault,
 * only produce bounded garbage (DESIGN.md, decoder robustness).
 */
class BitReader
{
  public:
    explicit BitReader(const Bytes &bytes)
        : buf_(&bytes), pos_(0)
    {}

    BitReader(const Bytes &bytes, std::size_t start_bit)
        : buf_(&bytes), pos_(start_bit)
    {}

    /** Read one bit; returns 0 past the end of the buffer. */
    u32
    readBit()
    {
        std::size_t byte = pos_ >> 3;
        if (byte >= buf_->size()) {
            ++pos_;
            return 0;
        }
        u32 bit = ((*buf_)[byte] >> (7 - (pos_ & 7))) & 1u;
        ++pos_;
        return bit;
    }

    /** Read @p count bits MSB-first into the low bits of the result. */
    u32
    readBits(int count)
    {
        assert(count >= 0 && count <= 32);
        u32 v = 0;
        for (int i = 0; i < count; ++i)
            v = (v << 1) | readBit();
        return v;
    }

    /** Skip to the next byte boundary. */
    void
    alignToByte()
    {
        pos_ = (pos_ + 7) & ~std::size_t{7};
    }

    /** True once the read position moved past the last byte. */
    bool exhausted() const { return pos_ >= buf_->size() * 8; }

    std::size_t position() const { return pos_; }
    std::size_t sizeBits() const { return buf_->size() * 8; }

  private:
    const Bytes *buf_;
    std::size_t pos_;
};

/** Flip the bit at @p pos inside @p bytes. Out-of-range is a no-op. */
void flipBit(Bytes &bytes, BitPos pos);

/** Read the bit at @p pos (0 if out of range). */
u32 getBit(const Bytes &bytes, BitPos pos);

} // namespace videoapp

#endif // VIDEOAPP_COMMON_BITSTREAM_H_
