/**
 * @file
 * Fundamental integer and byte types shared across VideoApp modules.
 */

#ifndef VIDEOAPP_COMMON_TYPES_H_
#define VIDEOAPP_COMMON_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace videoapp {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** A contiguous sequence of bytes, the unit of storage and encryption. */
using Bytes = std::vector<u8>;

/** Bit position within a byte vector (bit 0 = MSB of byte 0). */
using BitPos = std::size_t;

} // namespace videoapp

#endif // VIDEOAPP_COMMON_TYPES_H_
