/**
 * @file
 * The VAPP serving wire protocol: a length-prefixed binary framing
 * shared by the server, the client library and the load bench.
 *
 * Every message travels as one frame:
 *
 *   header (20 bytes, all integers big-endian like the containers)
 *     u32 magic "VSRV"     u16 version      u8 kind    u8 flags
 *     u32 requestId        u32 payloadLength
 *     u32 headerCrc        (crc32 of bytes 0..15)
 *   payload (payloadLength bytes, opcode/status specific)
 *   u32 payloadCrc         (crc32 of the payload bytes)
 *
 * `kind` is the request Opcode client->server and the response
 * Status server->client; `requestId` is echoed verbatim so a client
 * can pipeline requests on one connection. The parser is total:
 * truncations, bad magic/version, oversized lengths and CRC flips
 * all come back as typed WireError values, never a crash (fuzzed in
 * tests/server_test.cc, mirroring the vapp_container fuzzing).
 *
 * Payload encodings are plain big-endian field sequences built with
 * WireWriter and consumed with the bounds-checked WireReader; every
 * parse*() is as total as the frame parser. Response payloads begin
 * with the Status byte repeated, so a generic error response (status
 * byte only) parses under every opcode's response type.
 */

#ifndef VIDEOAPP_SERVER_WIRE_H_
#define VIDEOAPP_SERVER_WIRE_H_

#include <optional>
#include <string>
#include <vector>

#include "archive/archive_service.h"
#include "codec/container.h"
#include "core/pipeline.h"

namespace videoapp {

/** "VSRV" — the serving protocol, distinct from both containers. */
inline constexpr u32 kWireMagic = 0x56535256;

/** Current (and oldest supported) wire protocol version. */
inline constexpr u16 kWireVersion = 1;

/** Encoded frame header size in bytes. */
inline constexpr std::size_t kWireHeaderBytes = 20;

/** Reject frames claiming payloads beyond this (memory safety). */
inline constexpr u32 kWireMaxPayload = 256u << 20;

/** Request opcodes (frame `kind`, client -> server). */
enum class Opcode : u8
{
    Health = 0,      // liveness + load probe, served off-queue
    GetFrames = 1,   // decode one GOP of a stored video
    Put = 2,         // store a raw I420 video under a name
    Stat = 3,        // directory listing
    Scrub = 4,       // archive-wide repair pass
    ClusterInfo = 5, // ring topology + epoch (cluster nodes only)
    MetaPut = 6,     // node-to-node: replicate a precise-meta blob
    MetaGet = 7,     // node-to-node: fetch a held replica blob
    CellPull = 8,    // node-to-node: fetch a full record (migration)
    CellPush = 9,    // node-to-node: install a full record (migration)
};

/**
 * Frame header flag: this request was forwarded by a peer shard on
 * the client's behalf. A receiving node serves it locally even when
 * the ring says another shard owns the name — one hop, never a loop
 * (set exactly once, by the first mis-targeted node).
 */
inline constexpr u8 kWireFlagForwarded = 0x01;

/** Response status (frame `kind`, server -> client). */
enum class Status : u8
{
    Ok = 0,
    Partial = 1,     // served, but some blocks were uncorrectable
    NotFound = 2,    // ArchiveError::NotFound mapped to the wire
    KeyRequired = 3, // record is encrypted, no/empty key supplied
    Retry = 4,       // request queue full: back off and resend
    Deadline = 5,    // deadline expired before a worker got to it
    BadRequest = 6,  // malformed frame or payload
    Error = 7,       // any other server-side failure
    /** Served at reduced fidelity: the server shed low-importance
     * streams under load to protect latency. Distinct from Partial
     * (storage damage) — the loss here was chosen, not suffered. */
    Degraded = 8,
    /** The request carried a ring epoch older than the node's: the
     * topology changed under the client. The response payload is a
     * full ClusterInfoResponse body (status byte = WrongEpoch), so
     * the client installs the fresh ring and retries — no separate
     * refresh round trip. */
    WrongEpoch = 9,
};

/** Why a frame could not be decoded. */
enum class WireError
{
    None,
    ShortRead,  // buffer truncated mid-frame (peer died mid-send)
    BadMagic,   // not a VSRV frame
    BadVersion, // peer speaks a newer protocol revision
    Oversized,  // payload length beyond kWireMaxPayload
    BadCrc,     // header or payload failed its integrity check
    BadKind,    // opcode/status byte outside the known range
    Malformed,  // payload fields inconsistent with the opcode
    /** Peer closed cleanly between frames (orderly EOF / reset):
     * distinct from ShortRead so pipelined clients can tell "the
     * server went away" from "the stream is corrupt". */
    ConnectionClosed,
};

const char *opcodeName(Opcode op);
const char *statusName(Status status);
const char *wireErrorName(WireError error);

// --- framing -----------------------------------------------------------

/** A parsed frame header (payload read separately). */
struct WireFrameHeader
{
    u8 kind = 0;
    u8 flags = 0;
    u32 requestId = 0;
    u32 payloadLength = 0;
};

/** Encode a complete frame (header + payload + payload CRC). */
Bytes encodeFrame(u8 kind, u32 requestId, const Bytes &payload,
                  u8 flags = 0);

/**
 * Encode only the 20-byte frame header for a payload of
 * @p payloadLength bytes. The zero-copy response path sends
 * [header][shared payload][crc trailer] as separate segments, so
 * the payload bytes are never copied into the frame.
 */
Bytes encodeFrameHeader(u8 kind, u32 requestId, u32 payloadLength,
                        u8 flags = 0);

/** A u32 as 4 big-endian bytes (the payload CRC trailer). */
Bytes encodeBe32(u32 v);

/**
 * Parse and validate a 20-byte frame header. @p data must hold at
 * least kWireHeaderBytes; @p out is valid only on None.
 */
WireError parseFrameHeader(const u8 *data, std::size_t size,
                           WireFrameHeader &out);

/** Check a received payload against its trailing CRC field. */
WireError verifyPayload(const Bytes &payload, u32 payload_crc);

/**
 * Incremental frame deframer for nonblocking sockets: feed() raw
 * bytes as they arrive in arbitrary-sized chunks, then pull
 * complete frames out with next(). The event loop owns one per
 * connection; blocking recvFull loops are gone.
 *
 * Error discipline mirrors the blocking reader it replaces:
 *
 *  - Header damage (bad magic/version/CRC, oversized length) is
 *    *fatal*: a byte stream cannot be resynchronized, so fatal()
 *    latches and next() keeps returning Error. The caller answers
 *    BadRequest once and drops the connection.
 *  - Payload CRC damage is *recoverable*: framing held, so the
 *    frame is consumed, out.header carries the request id to echo,
 *    and the stream stays in sync for the next frame.
 */
class FrameDeframer
{
  public:
    enum class Result
    {
        Frame,    // out holds a verified frame
        NeedMore, // feed() more bytes
        Error,    // see error(); fatal() tells if the stream is lost
    };

    struct Decoded
    {
        WireFrameHeader header;
        Bytes payload;
    };

    /** Append @p size raw bytes from the socket. */
    void feed(const u8 *data, std::size_t size);

    /** Extract the next complete frame, if buffered. */
    Result next(Decoded &out);

    /** Last error returned by next() (valid after Error). */
    WireError error() const { return error_; }

    /** Stream unrecoverable: stop reading, drop the connection. */
    bool fatal() const { return fatal_; }

    /** Bytes buffered but not yet consumed (tests/introspection). */
    std::size_t buffered() const { return buffer_.size() - pos_; }

  private:
    Bytes buffer_;
    std::size_t pos_ = 0;
    WireError error_ = WireError::None;
    bool fatal_ = false;
};

// --- payload primitives ------------------------------------------------

/** Append-only big-endian field writer for payload bodies. */
class WireWriter
{
  public:
    void putU8(u8 v) { out_.push_back(v); }
    void putU16(u16 v);
    void putU32(u32 v);
    void putU64(u64 v);
    /** IEEE double carried as its u64 bit pattern. */
    void putDouble(double v);
    /** u32 length prefix + raw bytes. */
    void putBytes(const Bytes &bytes);
    void putString(const std::string &s);

    Bytes take() { return std::move(out_); }

  private:
    Bytes out_;
};

/** Bounds-checked big-endian field reader; get*() return false once
 * the payload is exhausted and never read past the end. */
class WireReader
{
  public:
    explicit WireReader(const Bytes &data) : data_(data) {}

    bool getU8(u8 &v);
    bool getU16(u16 &v);
    bool getU32(u32 &v);
    bool getU64(u64 &v);
    bool getDouble(double &v);
    bool getBytes(Bytes &bytes);
    bool getString(std::string &s);

    /** Everything consumed (trailing garbage is a parse error). */
    bool exhausted() const { return pos_ == data_.size(); }

  private:
    const Bytes &data_;
    std::size_t pos_ = 0;
};

// --- requests ----------------------------------------------------------

struct GetFramesRequest
{
    std::string name;
    /** GOP index into the video's I-frame-delimited ranges. */
    u32 gop = 0;
    /** Mirrors ArchiveGetOptions (0 = read cells as stored). */
    double injectRawBer = 0.0;
    u64 seed = 1;
    bool conceal = false;
    Bytes key;
    /** Per-request deadline in ms (0 = none): expired requests get
     * Status::Deadline instead of tying up a worker. */
    u32 deadlineMs = 0;
    /** The ring epoch the sender routed by (0 = not epoch-checked,
     * the pre-resize wire shape). A node at a newer epoch answers
     * Status::WrongEpoch with the fresh ring instead of serving. */
    u64 ringEpoch = 0;
    /** Allow a metadata-replica successor to answer a degraded,
     * precise-streams-only response when it is not the owner (the
     * router's owner-timeout fallback path). */
    bool allowReplica = false;
};

struct PutRequest
{
    std::string name;
    u16 width = 0;
    u16 height = 0;
    u32 frameCount = 0;
    /** Raw planar I420 bytes, frameCount * (w*h*3/2). */
    Bytes i420;
    /** Encrypt before storage when key is non-empty. */
    Bytes key;
    u8 cipherMode = 0;
    u32 keyId = 0;
    /** Master-IV derivation seed (mixed with the name hash). */
    u64 ivSeed = 1;
    /** Selective encryption: encrypt only streams with scheme
     * t >= this (0 = encrypt every stream). */
    u8 encryptMinT = 0;
    /** Ring epoch the sender routed by (0 = not epoch-checked). */
    u64 ringEpoch = 0;
};

struct ScrubRequest
{
    double ageRawBer = 0.0;
    u64 seed = 1;
};

Bytes serializeGetFramesRequest(const GetFramesRequest &request);
bool parseGetFramesRequest(const Bytes &payload,
                           GetFramesRequest &out);
Bytes serializePutRequest(const PutRequest &request);
bool parsePutRequest(const Bytes &payload, PutRequest &out);
Bytes serializeScrubRequest(const ScrubRequest &request);
bool parseScrubRequest(const Bytes &payload, ScrubRequest &out);
// Health and Stat requests carry empty payloads.

// --- responses ---------------------------------------------------------

struct GetFramesResponse
{
    Status status = Status::Error;
    u16 width = 0;
    u16 height = 0;
    /** Display index of the first returned frame. */
    u32 firstFrame = 0;
    u32 frameCount = 0;
    /** Total GOPs in the video (lets clients iterate). */
    u32 gopCount = 0;
    /** Served from the decoded-GOP cache (no BCH/decrypt/decode). */
    bool fromCache = false;
    u64 blocksCorrected = 0;
    u64 blocksUncorrectable = 0;
    /** Streams the server shed under load (Degraded responses). */
    u32 streamsShed = 0;
    /** Stored payload bytes the shed streams did not read. */
    u64 bytesShed = 0;
    /** Modeled quality cost of shedding in dB: reconstruction error
     * energy taken proportional to the shed payload fraction f, so
     * est = -10*log10(1-f). 0 for full-fidelity responses. */
    double shedDbEst = 0.0;
    /** Raw planar I420 frames, display order. */
    Bytes i420;
};

struct PutResponse
{
    Status status = Status::Error;
    u64 payloadBytes = 0;
    u64 cellBytes = 0;
};

struct StatResponse
{
    Status status = Status::Error;
    std::vector<ArchiveVideoStat> videos;
};

struct ScrubResponse
{
    Status status = Status::Error;
    u64 videos = 0;
    u64 streams = 0;
    u64 blocksRead = 0;
    u64 blocksRewritten = 0;
    u64 bitsCorrected = 0;
    u64 blocksUncorrectable = 0;
    u64 streamsMiscorrected = 0;
    u64 streamsDamaged = 0;
};

struct HealthResponse
{
    Status status = Status::Error;
    u32 queueDepth = 0;
    u32 queueCapacity = 0;
    u32 queueHighWater = 0;
    u64 queueRejected = 0;
    u64 cacheBytes = 0;
    u64 cacheEntries = 0;
    u64 videos = 0;
    /** GETs answered from another request's in-flight decode. */
    u64 coalescedGets = 0;
    /** Load-shedding degradation-class threshold (0 = disabled). */
    u32 shedThreshold = 0;
    /** GETs served reduced-fidelity (Status::Degraded) so far. */
    u64 shedResponses = 0;
};

Bytes serializeGetFramesResponse(const GetFramesResponse &response);
bool parseGetFramesResponse(const Bytes &payload,
                            GetFramesResponse &out);
Bytes serializePutResponse(const PutResponse &response);
bool parsePutResponse(const Bytes &payload, PutResponse &out);
Bytes serializeStatResponse(const StatResponse &response);
bool parseStatResponse(const Bytes &payload, StatResponse &out);
Bytes serializeScrubResponse(const ScrubResponse &response);
bool parseScrubResponse(const Bytes &payload, ScrubResponse &out);
Bytes serializeHealthResponse(const HealthResponse &response);
bool parseHealthResponse(const Bytes &payload, HealthResponse &out);

/** A bare-status payload (error responses under any opcode). */
Bytes serializeStatusOnly(Status status);

/** First payload byte as a Status; nullopt on empty/bad values. */
std::optional<Status> peekStatus(const Bytes &payload);

// --- cluster messages --------------------------------------------------

/** One shard of the ring as clients need to reach it. */
struct ClusterShard
{
    u32 id = 0;
    std::string host;
    u16 port = 0;
};

/**
 * Ring topology answer (CLUSTER_INFO, served inline like HEALTH).
 * Placement is a pure function of (shard ids, vnodes), so a client
 * holding this response routes exactly like the nodes themselves;
 * `epoch` bumps on any membership change so stale clients can tell
 * their map is outdated and refresh.
 */
struct ClusterInfoResponse
{
    Status status = Status::Error;
    u64 epoch = 0;
    u32 vnodes = 0;
    u32 replicas = 0;
    u32 selfId = 0;
    std::vector<ClusterShard> shards;
};

/** Node-to-node: replicate @p name's precise-meta blob (META_PUT). */
struct MetaPutRequest
{
    std::string name;
    Bytes meta;
};

/** Node-to-node: fetch the replica blob held for @p name. */
struct MetaGetRequest
{
    std::string name;
};

struct MetaGetResponse
{
    Status status = Status::Error;
    Bytes meta;
};

/**
 * Node-to-node bulk record transfer (CELL_PULL / CELL_PUSH), the
 * migration engine's data plane. `record` is an opaque archive
 * export blob — the CRC-checked precise metadata followed by the
 * raw approximate cell images in stream order (see
 * ArchiveService::exportRecord) — so the wire layer never needs to
 * understand cell geometry.
 */
struct CellPullRequest
{
    std::string name;
};

struct CellPullResponse
{
    Status status = Status::Error;
    Bytes record;
};

struct CellPushRequest
{
    std::string name;
    Bytes record;
    /** Replace an existing record (rebuild); adopt-if-absent when
     * false, so a concurrent PUT at the new owner wins. */
    bool overwrite = false;
};

struct CellPushResponse
{
    Status status = Status::Error;
    /** The record was installed (false: a newer one already there). */
    bool adopted = false;
};

Bytes serializeClusterInfoResponse(const ClusterInfoResponse &r);
bool parseClusterInfoResponse(const Bytes &payload,
                              ClusterInfoResponse &out);
Bytes serializeMetaPutRequest(const MetaPutRequest &request);
bool parseMetaPutRequest(const Bytes &payload, MetaPutRequest &out);
Bytes serializeMetaGetRequest(const MetaGetRequest &request);
bool parseMetaGetRequest(const Bytes &payload, MetaGetRequest &out);
Bytes serializeMetaGetResponse(const MetaGetResponse &response);
bool parseMetaGetResponse(const Bytes &payload, MetaGetResponse &out);
Bytes serializeCellPullRequest(const CellPullRequest &request);
bool parseCellPullRequest(const Bytes &payload, CellPullRequest &out);
Bytes serializeCellPullResponse(const CellPullResponse &response);
bool parseCellPullResponse(const Bytes &payload,
                           CellPullResponse &out);
Bytes serializeCellPushRequest(const CellPushRequest &request);
bool parseCellPushRequest(const Bytes &payload, CellPushRequest &out);
Bytes serializeCellPushResponse(const CellPushResponse &response);
bool parseCellPushResponse(const Bytes &payload,
                           CellPushResponse &out);

/**
 * The leading length-prefixed name string shared by every
 * name-routed request payload (GET_FRAMES, PUT, META_PUT, META_GET,
 * CELL_PULL and CELL_PUSH all serialize the name first). The routing decision needs only
 * this field, so a node peeks it without a full parse; nullopt when
 * the payload is too short to carry one.
 */
std::optional<std::string> peekRequestName(const Bytes &payload);

// --- frame packing & GOP ranges ----------------------------------------

/** One GOP's frame range in display order. */
struct GopRange
{
    u32 firstFrame = 0;
    u32 frameCount = 0;
};

/**
 * I-frame-delimited GOP ranges of a video, computed from its precise
 * frame headers (display order; a leading non-I prefix folds into
 * the first GOP). Never empty for a non-empty video.
 */
std::vector<GopRange>
gopRanges(const std::vector<FrameHeader> &headers,
          std::size_t frame_count);

/** Concatenate frames [first, first+count) as raw planar I420. */
Bytes packFramesI420(const Video &video, std::size_t first,
                     std::size_t count);

} // namespace videoapp

#endif // VIDEOAPP_SERVER_WIRE_H_
