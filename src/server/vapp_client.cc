#include "server/vapp_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <thread>

#include "common/rng.h"
#include "common/telemetry.h"

namespace videoapp {

namespace {

u32
be32At(const u8 *p)
{
    return static_cast<u32>(p[0]) << 24 |
           static_cast<u32>(p[1]) << 16 |
           static_cast<u32>(p[2]) << 8 | static_cast<u32>(p[3]);
}

} // namespace

VappClient::~VappClient()
{
    disconnect();
}

VappClient::VappClient(VappClient &&other) noexcept
    : fd_(other.fd_), nextId_(other.nextId_),
      lastError_(other.lastError_), retry_(other.retry_),
      host_(std::move(other.host_)), port_(other.port_),
      jitterDraws_(other.jitterDraws_)
{
    other.fd_ = -1;
}

VappClient &
VappClient::operator=(VappClient &&other) noexcept
{
    if (this != &other) {
        disconnect();
        fd_ = other.fd_;
        nextId_ = other.nextId_;
        lastError_ = other.lastError_;
        retry_ = other.retry_;
        host_ = std::move(other.host_);
        port_ = other.port_;
        jitterDraws_ = other.jitterDraws_;
        other.fd_ = -1;
    }
    return *this;
}

bool
VappClient::connect(const std::string &host, u16 port)
{
    disconnect();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) < 0) {
        ::close(fd_);
        fd_ = -1;
        return false;
    }
    int nodelay = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &nodelay,
                 sizeof nodelay);
    lastError_ = WireError::None;
    host_ = host;
    port_ = port;
    return true;
}

void
VappClient::disconnect()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
VappClient::sendAll(const Bytes &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::send(fd_, data.data() + off,
                           data.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            // The peer tearing the connection down (RST / EPIPE) is
            // a distinct condition from a protocol-level short
            // write: callers may reconnect-and-retry on the former.
            lastError_ = (errno == EPIPE || errno == ECONNRESET)
                             ? WireError::ConnectionClosed
                             : WireError::ShortRead;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
VappClient::recvAll(u8 *data, std::size_t size, bool frame_boundary)
{
    std::size_t off = 0;
    while (off < size) {
        ssize_t n = ::recv(fd_, data + off, size - off, 0);
        if (n == 0) {
            // EOF on the very first byte of a frame is a clean close
            // between responses (server shutdown, idle teardown) —
            // typed so pipelined callers can tell "the server went
            // away" from "the server died mid-frame".
            lastError_ = (frame_boundary && off == 0)
                             ? WireError::ConnectionClosed
                             : WireError::ShortRead;
            return false;
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            lastError_ = errno == ECONNRESET
                             ? WireError::ConnectionClosed
                             : WireError::ShortRead;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
VappClient::send(Opcode op, const Bytes &payload, u32 *request_id,
                 u8 flags)
{
    if (fd_ < 0) {
        lastError_ = WireError::ShortRead;
        return false;
    }
    u32 id = nextId_++;
    if (request_id)
        *request_id = id;
    return sendAll(
        encodeFrame(static_cast<u8>(op), id, payload, flags));
}

std::optional<VappClient::RawResponse>
VappClient::receive()
{
    if (fd_ < 0) {
        lastError_ = WireError::ShortRead;
        return std::nullopt;
    }
    u8 header[kWireHeaderBytes];
    if (!recvAll(header, sizeof header, /*frame_boundary=*/true))
        return std::nullopt;
    WireFrameHeader fh;
    WireError err = parseFrameHeader(header, sizeof header, fh);
    if (err != WireError::None) {
        lastError_ = err;
        return std::nullopt;
    }
    RawResponse response;
    response.kind = fh.kind;
    response.requestId = fh.requestId;
    response.payload.resize(fh.payloadLength);
    u8 crc_buf[4];
    if (!recvAll(response.payload.data(),
                 response.payload.size()) ||
        !recvAll(crc_buf, sizeof crc_buf))
        return std::nullopt;
    err = verifyPayload(response.payload, be32At(crc_buf));
    if (err != WireError::None) {
        lastError_ = err;
        return std::nullopt;
    }
    lastError_ = WireError::None;
    return response;
}

void
VappClient::backoffSleep(int attempt)
{
    u32 backoff = retry_.initialBackoffMs;
    for (int i = 0; i < attempt && backoff < retry_.maxBackoffMs;
         ++i)
        backoff *= 2;
    if (backoff > retry_.maxBackoffMs)
        backoff = retry_.maxBackoffMs;
    if (backoff == 0)
        return;
    // Jitter stream: one fresh deterministic draw per sleep, so
    // repeated retries (and moved-from clients) never reuse a value.
    Rng rng(Rng::deriveSeed(retry_.jitterSeed, jitterDraws_++));
    u32 half = backoff / 2;
    u32 delay =
        half + static_cast<u32>(rng.nextBelow(half > 0 ? half : 1));
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
}

std::optional<VappClient::RawResponse>
VappClient::call(Opcode op, const Bytes &payload)
{
    for (int attempt = 0;; ++attempt) {
        const bool last = attempt >= retry_.maxRetries;
        if (fd_ < 0 && !host_.empty() && !connect(host_, port_)) {
            // Reconnect refused (server restarting?): retryable.
            lastError_ = WireError::ConnectionClosed;
            if (last)
                return std::nullopt;
            VA_TELEM_COUNT("client.retries", 1);
            backoffSleep(attempt);
            continue;
        }
        std::optional<RawResponse> raw;
        if (send(op, payload))
            raw = receive();
        if (!raw) {
            if (last || lastError_ != WireError::ConnectionClosed)
                return std::nullopt;
            // Clean close between frames: reconnect and resend.
            disconnect();
            VA_TELEM_COUNT("client.retries", 1);
            backoffSleep(attempt);
            continue;
        }
        if (raw->kind == static_cast<u8>(Status::Retry) && !last) {
            // Explicit backpressure: back off and resend.
            VA_TELEM_COUNT("client.retries", 1);
            backoffSleep(attempt);
            continue;
        }
        return raw;
    }
}

std::optional<GetFramesResponse>
VappClient::getFrames(const GetFramesRequest &request)
{
    auto raw = call(Opcode::GetFrames,
                    serializeGetFramesRequest(request));
    if (!raw)
        return std::nullopt;
    GetFramesResponse response;
    if (!parseGetFramesResponse(raw->payload, response)) {
        lastError_ = WireError::Malformed;
        return std::nullopt;
    }
    return response;
}

std::optional<PutResponse>
VappClient::put(const PutRequest &request)
{
    auto raw = call(Opcode::Put, serializePutRequest(request));
    if (!raw)
        return std::nullopt;
    PutResponse response;
    if (!parsePutResponse(raw->payload, response)) {
        lastError_ = WireError::Malformed;
        return std::nullopt;
    }
    return response;
}

std::optional<StatResponse>
VappClient::stat()
{
    auto raw = call(Opcode::Stat, Bytes{});
    if (!raw)
        return std::nullopt;
    StatResponse response;
    if (!parseStatResponse(raw->payload, response)) {
        lastError_ = WireError::Malformed;
        return std::nullopt;
    }
    return response;
}

std::optional<ScrubResponse>
VappClient::scrub(const ScrubRequest &request)
{
    auto raw = call(Opcode::Scrub, serializeScrubRequest(request));
    if (!raw)
        return std::nullopt;
    ScrubResponse response;
    if (!parseScrubResponse(raw->payload, response)) {
        lastError_ = WireError::Malformed;
        return std::nullopt;
    }
    return response;
}

std::optional<HealthResponse>
VappClient::health()
{
    auto raw = call(Opcode::Health, Bytes{});
    if (!raw)
        return std::nullopt;
    HealthResponse response;
    if (!parseHealthResponse(raw->payload, response)) {
        lastError_ = WireError::Malformed;
        return std::nullopt;
    }
    return response;
}

} // namespace videoapp
