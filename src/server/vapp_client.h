/**
 * @file
 * Client library for the VAPP store server: one TCP connection
 * speaking the wire protocol, with a synchronous request/response
 * call per opcode plus a split send()/receive() pair for pipelined
 * use (the load bench opens many requests before reading any
 * response — that is how the backpressure path is exercised
 * deterministically).
 *
 * The client is single-connection and not thread-safe; concurrency
 * is modeled as one VappClient per thread, matching how independent
 * players would hit a store front end.
 */

#ifndef VIDEOAPP_SERVER_VAPP_CLIENT_H_
#define VIDEOAPP_SERVER_VAPP_CLIENT_H_

#include <optional>
#include <string>

#include "server/wire.h"

namespace videoapp {

class VappClient
{
  public:
    VappClient() = default;
    ~VappClient();

    VappClient(const VappClient &) = delete;
    VappClient &operator=(const VappClient &) = delete;
    /** Movable: the connection has a single owner. */
    VappClient(VappClient &&other) noexcept;
    VappClient &operator=(VappClient &&other) noexcept;

    /** Connect to @p host:@p port; false on failure (errno kept). */
    bool connect(const std::string &host, u16 port);
    void disconnect();
    bool connected() const { return fd_ >= 0; }

    /**
     * Failure detail of the last receive()/call that returned
     * nullopt. ConnectionClosed means the server went away cleanly
     * between frames (or reset the connection) — safe to reconnect
     * and retry; ShortRead means the stream died mid-frame and the
     * in-flight response is unrecoverable.
     */
    WireError lastError() const { return lastError_; }

    // --- synchronous calls (send one request, read one response) ---

    std::optional<GetFramesResponse>
    getFrames(const GetFramesRequest &request);
    std::optional<PutResponse> put(const PutRequest &request);
    std::optional<StatResponse> stat();
    std::optional<ScrubResponse> scrub(const ScrubRequest &request);
    std::optional<HealthResponse> health();

    // --- pipelined interface --------------------------------------

    /** One decoded response frame (kind is a Status byte). */
    struct RawResponse
    {
        u8 kind = 0;
        u32 requestId = 0;
        Bytes payload;
    };

    /**
     * Fire one request without waiting. The assigned request id is
     * stored in @p request_id when non-null; responses may come back
     * in any order relative to other in-flight requests.
     */
    bool send(Opcode op, const Bytes &payload,
              u32 *request_id = nullptr);

    /** Block for the next response frame on the connection. */
    std::optional<RawResponse> receive();

  private:
    bool sendAll(const Bytes &data);
    /** @p frame_boundary: EOF before any byte is a clean close. */
    bool recvAll(u8 *data, std::size_t size,
                 bool frame_boundary = false);

    int fd_ = -1;
    u32 nextId_ = 1;
    WireError lastError_ = WireError::None;
};

} // namespace videoapp

#endif // VIDEOAPP_SERVER_VAPP_CLIENT_H_
