/**
 * @file
 * Client library for the VAPP store server: one TCP connection
 * speaking the wire protocol, with a synchronous request/response
 * call per opcode plus a split send()/receive() pair for pipelined
 * use (the load bench opens many requests before reading any
 * response — that is how the backpressure path is exercised
 * deterministically).
 *
 * The client is single-connection and not thread-safe; concurrency
 * is modeled as one VappClient per thread, matching how independent
 * players would hit a store front end.
 */

#ifndef VIDEOAPP_SERVER_VAPP_CLIENT_H_
#define VIDEOAPP_SERVER_VAPP_CLIENT_H_

#include <optional>
#include <string>

#include "server/wire.h"

namespace videoapp {

/**
 * Bounded retry for the synchronous calls. Disabled by default
 * (maxRetries = 0): every existing caller keeps exactly one
 * request/response round trip. When enabled, a call retries on the
 * two *retryable* failures only —
 *
 *  - Status::Retry responses (explicit server backpressure), and
 *  - WireError::ConnectionClosed (the server went away cleanly
 *    between frames; the client reconnects first),
 *
 * with capped exponential backoff between attempts. The delay for
 * attempt k is backoff/2 + jitter in [0, backoff/2), backoff
 * doubling from initialBackoffMs up to maxBackoffMs; jitter draws
 * from a deterministic per-client Rng stream (jitterSeed), so tests
 * and the bench stay reproducible while concurrent clients still
 * decorrelate. Mid-frame stream loss (ShortRead) and malformed
 * payloads are never retried — the response is unrecoverable.
 */
struct RetryPolicy
{
    /** Extra attempts after the first (0 = retry disabled). */
    int maxRetries = 0;
    u32 initialBackoffMs = 2;
    u32 maxBackoffMs = 128;
    /** Seed of the jitter stream (decorrelate clients by seed). */
    u64 jitterSeed = 1;
};

class VappClient
{
  public:
    VappClient() = default;
    ~VappClient();

    VappClient(const VappClient &) = delete;
    VappClient &operator=(const VappClient &) = delete;
    /** Movable: the connection has a single owner. */
    VappClient(VappClient &&other) noexcept;
    VappClient &operator=(VappClient &&other) noexcept;

    /** Connect to @p host:@p port; false on failure (errno kept). */
    bool connect(const std::string &host, u16 port);
    void disconnect();
    bool connected() const { return fd_ >= 0; }

    /** Enable (or reconfigure) bounded retry for the synchronous
     * calls; the pipelined send()/receive() pair is never retried.
     * Counted in telemetry as "client.retries". */
    void setRetryPolicy(const RetryPolicy &policy)
    {
        retry_ = policy;
    }
    const RetryPolicy &retryPolicy() const { return retry_; }

    /**
     * Failure detail of the last receive()/call that returned
     * nullopt. ConnectionClosed means the server went away cleanly
     * between frames (or reset the connection) — safe to reconnect
     * and retry; ShortRead means the stream died mid-frame and the
     * in-flight response is unrecoverable.
     */
    WireError lastError() const { return lastError_; }

    // --- synchronous calls (send one request, read one response) ---

    std::optional<GetFramesResponse>
    getFrames(const GetFramesRequest &request);
    std::optional<PutResponse> put(const PutRequest &request);
    std::optional<StatResponse> stat();
    std::optional<ScrubResponse> scrub(const ScrubRequest &request);
    std::optional<HealthResponse> health();

    // --- pipelined interface --------------------------------------

    /** One decoded response frame (kind is a Status byte). */
    struct RawResponse
    {
        u8 kind = 0;
        u32 requestId = 0;
        Bytes payload;
    };

    /**
     * Fire one request without waiting. The assigned request id is
     * stored in @p request_id when non-null; responses may come back
     * in any order relative to other in-flight requests. @p flags
     * rides the frame header (cluster nodes set kWireFlagForwarded
     * when relaying on a client's behalf).
     */
    bool send(Opcode op, const Bytes &payload,
              u32 *request_id = nullptr, u8 flags = 0);

    /** Block for the next response frame on the connection. */
    std::optional<RawResponse> receive();

    /**
     * One synchronous round trip returning the raw response frame,
     * with the retry policy applied. For callers that must branch on
     * the status byte before choosing a parser — a WRONG_EPOCH
     * refusal carries a ClusterInfo body inside a GET_FRAMES or PUT
     * exchange.
     */
    std::optional<RawResponse> callRaw(Opcode op,
                                       const Bytes &payload)
    {
        return call(op, payload);
    }

  private:
    bool sendAll(const Bytes &data);
    /** @p frame_boundary: EOF before any byte is a clean close. */
    bool recvAll(u8 *data, std::size_t size,
                 bool frame_boundary = false);
    /** One sync round trip with the retry policy applied. */
    std::optional<RawResponse> call(Opcode op, const Bytes &payload);
    void backoffSleep(int attempt);

    int fd_ = -1;
    u32 nextId_ = 1;
    WireError lastError_ = WireError::None;
    RetryPolicy retry_;
    /** Last connect() target, for reconnect-and-retry. */
    std::string host_;
    u16 port_ = 0;
    u64 jitterDraws_ = 0;
};

} // namespace videoapp

#endif // VIDEOAPP_SERVER_VAPP_CLIENT_H_
