#include "server/frame_cache.h"

#include <functional>

#include "common/crc32.h"
#include "common/telemetry.h"
#include "server/wire.h"

namespace videoapp {

CachedGopPtr
makeCachedGop(const DecodedGop &gop)
{
    auto entry = std::make_shared<CachedGop>();
    entry->width = gop.width;
    entry->height = gop.height;
    entry->firstFrame = gop.firstFrame;
    entry->frameCount = gop.frameCount;
    entry->gopCount = gop.gopCount;
    entry->blocksCorrected = gop.blocksCorrected;
    entry->blocksUncorrectable = gop.blocksUncorrectable;
    entry->partial = gop.blocksUncorrectable > 0;

    GetFramesResponse response;
    response.status =
        entry->partial ? Status::Partial : Status::Ok;
    response.width = gop.width;
    response.height = gop.height;
    response.firstFrame = gop.firstFrame;
    response.frameCount = gop.frameCount;
    response.gopCount = gop.gopCount;
    response.fromCache = true;
    response.blocksCorrected = gop.blocksCorrected;
    response.blocksUncorrectable = gop.blocksUncorrectable;
    response.i420 = gop.i420;
    entry->payload = serializeGetFramesResponse(response);
    entry->payloadCrc = crc32(entry->payload);
    return entry;
}

std::size_t
FrameCache::GopKeyHash::operator()(const GopKey &k) const
{
    std::size_t h = std::hash<std::string>{}(k.video);
    h ^= h >> 23;
    h = h * 0x9E3779B97F4A7C15ull + k.gop;
    h = h * 0x9E3779B97F4A7C15ull + k.keyId;
    return h;
}

FrameCache::FrameCache(std::size_t byte_budget)
    : shardBudget_((byte_budget > 0 ? byte_budget : 1) / kShards + 1),
      shards_(kShards)
{}

FrameCache::Shard &
FrameCache::shardFor(const GopKey &key)
{
    return shards_[GopKeyHash{}(key) % kShards];
}

CachedGopPtr
FrameCache::get(const GopKey &key)
{
    Shard &shard = shardFor(key);
    std::lock_guard lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        VA_TELEM_COUNT("server.cache.misses", 1);
        return nullptr;
    }
    // Refresh to MRU.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    VA_TELEM_COUNT("server.cache.hits", 1);
    return it->second->gop;
}

void
FrameCache::put(const GopKey &key, CachedGopPtr gop)
{
    if (!gop)
        return;
    const std::size_t charge = gop->chargedBytes();
    if (charge > shardBudget_)
        return; // would evict the whole shard for one entry
    Shard &shard = shardFor(key);
    std::lock_guard lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
        // Replace in place (e.g. re-decode after an invalidation
        // race); adjust the byte accounting to the new size. The old
        // entry stays alive for any response still writing it.
        std::size_t old = it->second->gop->chargedBytes();
        shard.bytes -= old;
        bytes_.fetch_sub(old, std::memory_order_relaxed);
        it->second->gop = std::move(gop);
        shard.bytes += charge;
        bytes_.fetch_add(charge, std::memory_order_relaxed);
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return;
    }
    while (shard.bytes + charge > shardBudget_ &&
           !shard.lru.empty()) {
        Entry &victim = shard.lru.back();
        std::size_t victim_bytes = victim.gop->chargedBytes();
        shard.index.erase(victim.key);
        shard.lru.pop_back();
        shard.bytes -= victim_bytes;
        bytes_.fetch_sub(victim_bytes, std::memory_order_relaxed);
        entries_.fetch_sub(1, std::memory_order_relaxed);
        evictions_.fetch_add(1, std::memory_order_relaxed);
        VA_TELEM_COUNT("server.cache.evictions", 1);
    }
    shard.lru.push_front(Entry{key, std::move(gop)});
    shard.index[key] = shard.lru.begin();
    shard.bytes += charge;
    bytes_.fetch_add(charge, std::memory_order_relaxed);
    entries_.fetch_add(1, std::memory_order_relaxed);
    VA_TELEM_COUNT("server.cache.inserts", 1);
}

void
FrameCache::put(const GopKey &key, const DecodedGop &gop)
{
    put(key, makeCachedGop(gop));
}

void
FrameCache::eraseVideo(const std::string &video)
{
    for (Shard &shard : shards_) {
        std::lock_guard lock(shard.mutex);
        for (auto it = shard.lru.begin(); it != shard.lru.end();) {
            if (it->key.video != video) {
                ++it;
                continue;
            }
            std::size_t freed = it->gop->chargedBytes();
            shard.index.erase(it->key);
            it = shard.lru.erase(it);
            shard.bytes -= freed;
            bytes_.fetch_sub(freed, std::memory_order_relaxed);
            entries_.fetch_sub(1, std::memory_order_relaxed);
            VA_TELEM_COUNT("server.cache.invalidated", 1);
        }
    }
}

void
FrameCache::clear()
{
    for (Shard &shard : shards_) {
        std::lock_guard lock(shard.mutex);
        std::size_t dropped = shard.lru.size();
        bytes_.fetch_sub(shard.bytes, std::memory_order_relaxed);
        entries_.fetch_sub(dropped, std::memory_order_relaxed);
        VA_TELEM_COUNT("server.cache.invalidated", dropped);
        shard.index.clear();
        shard.lru.clear();
        shard.bytes = 0;
    }
}

} // namespace videoapp
