#include "server/vapp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <functional>

#include "common/crc32.h"
#include "common/telemetry.h"

namespace videoapp {

struct VappServer::Connection
{
    int fd = -1;
    /** Serializes response frames from workers + the reader. */
    std::mutex writeMutex;
    std::atomic<bool> open{true};
    /** Reader thread exited; reaping may join and close. */
    std::atomic<bool> finished{false};
};

namespace {

/** Read exactly @p size bytes; false on EOF, error or shutdown. */
bool
recvFull(int fd, u8 *data, std::size_t size)
{
    std::size_t off = 0;
    while (off < size) {
        ssize_t n = ::recv(fd, data + off, size - off, 0);
        if (n == 0)
            return false;
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

u32
be32At(const u8 *p)
{
    return static_cast<u32>(p[0]) << 24 |
           static_cast<u32>(p[1]) << 16 |
           static_cast<u32>(p[2]) << 8 | static_cast<u32>(p[3]);
}

u32
elapsedMs(std::chrono::steady_clock::time_point since)
{
    auto ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - since)
            .count();
    return ms > 0 ? static_cast<u32>(ms) : 0;
}

} // namespace

VappServer::VappServer(ArchiveService &service,
                       VappServerConfig config)
    : service_(service), config_(config),
      queue_(config.queueCapacity), cache_(config.cacheBytes)
{}

VappServer::~VappServer()
{
    stop();
}

bool
VappServer::start()
{
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return false;
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) < 0 ||
        ::listen(listenFd_, 128) < 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    socklen_t len = sizeof addr;
    if (::getsockname(listenFd_,
                      reinterpret_cast<sockaddr *>(&addr),
                      &len) == 0)
        port_ = ntohs(addr.sin_port);

    running_.store(true);
    started_ = true;
    int workers = config_.workers > 0 ? config_.workers : 1;
    workers_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
VappServer::stop()
{
    if (!started_)
        return;
    bool was_running = running_.exchange(false);
    if (was_running && listenFd_ >= 0)
        ::shutdown(listenFd_, SHUT_RDWR);
    if (acceptThread_.joinable())
        acceptThread_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }

    // Close the queue first: admitted jobs drain to their responses
    // while the client connections are still writable.
    queue_.close();
    for (std::thread &w : workers_)
        if (w.joinable())
            w.join();
    workers_.clear();

    std::lock_guard lock(connMutex_);
    for (auto &conn : connections_) {
        conn->open.store(false);
        ::shutdown(conn->fd, SHUT_RDWR);
    }
    for (std::thread &t : connThreads_)
        if (t.joinable())
            t.join();
    for (auto &conn : connections_)
        ::close(conn->fd);
    connThreads_.clear();
    connections_.clear();
}

void
VappServer::setDrainPaused(bool paused)
{
    queue_.setDrainPaused(paused);
}

void
VappServer::reapFinishedConnections()
{
    // Called under connMutex_. A finished reader set its flag as its
    // last action, so joining here cannot block meaningfully.
    for (std::size_t i = 0; i < connections_.size();) {
        if (!connections_[i]->finished.load()) {
            ++i;
            continue;
        }
        if (connThreads_[i].joinable())
            connThreads_[i].join();
        ::close(connections_[i]->fd);
        connections_.erase(connections_.begin() +
                           static_cast<std::ptrdiff_t>(i));
        connThreads_.erase(connThreads_.begin() +
                           static_cast<std::ptrdiff_t>(i));
    }
}

void
VappServer::acceptLoop()
{
    while (running_.load()) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR && running_.load())
                continue;
            break; // listen socket shut down: stopping
        }
        VA_TELEM_COUNT("server.connections", 1);
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        std::lock_guard lock(connMutex_);
        reapFinishedConnections();
        connections_.push_back(conn);
        connThreads_.emplace_back(
            [this, conn] { connectionLoop(conn); });
    }
}

/** Write one frame to the connection (best effort once closed). */
bool
VappServer::sendFrame(Connection &conn, u8 kind, u32 request_id,
                      const Bytes &payload)
{
    Bytes frame = encodeFrame(kind, request_id, payload);
    std::lock_guard lock(conn.writeMutex);
    if (!conn.open.load())
        return false;
    std::size_t off = 0;
    while (off < frame.size()) {
        ssize_t n = ::send(conn.fd, frame.data() + off,
                           frame.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            conn.open.store(false);
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
VappServer::sendStatus(Connection &conn, Status status,
                       u32 request_id)
{
    return sendFrame(conn, static_cast<u8>(status), request_id,
                     serializeStatusOnly(status));
}

void
VappServer::connectionLoop(std::shared_ptr<Connection> conn)
{
    u8 header[kWireHeaderBytes];
    while (running_.load() && conn->open.load()) {
        if (!recvFull(conn->fd, header, sizeof header))
            break;
        WireFrameHeader fh;
        WireError err =
            parseFrameHeader(header, sizeof header, fh);
        if (err != WireError::None) {
            // Framing lost (bad magic/version/CRC/length): answer
            // once if possible, then drop the connection — there is
            // no way to resynchronize a byte stream.
            VA_TELEM_COUNT("server.frames.bad", 1);
            sendStatus(*conn, Status::BadRequest, 0);
            break;
        }
        Bytes payload(fh.payloadLength);
        u8 crc_buf[4];
        if (!recvFull(conn->fd, payload.data(), payload.size()) ||
            !recvFull(conn->fd, crc_buf, sizeof crc_buf))
            break;
        if (verifyPayload(payload, be32At(crc_buf)) !=
            WireError::None) {
            // Framing held, the body is corrupt: report and keep
            // the connection (the stream is still in sync).
            VA_TELEM_COUNT("server.frames.bad", 1);
            sendStatus(*conn, Status::BadRequest, fh.requestId);
            continue;
        }
        if (fh.kind > static_cast<u8>(Opcode::Scrub)) {
            VA_TELEM_COUNT("server.frames.bad", 1);
            sendStatus(*conn, Status::BadRequest, fh.requestId);
            continue;
        }
        Opcode op = static_cast<Opcode>(fh.kind);
        VA_TELEM_COUNT("server.requests", 1);
        if (op == Opcode::Health) {
            // Served off-queue: liveness probes must work while the
            // queue is saturated.
            answerHealth(conn, fh.requestId);
            continue;
        }
        QueueClass cls =
            (op == Opcode::Put || op == Opcode::Scrub)
                ? QueueClass::Maintain
                : QueueClass::Serve;
        ServerJob job;
        job.conn = conn;
        job.opcode = op;
        job.requestId = fh.requestId;
        job.payload = std::move(payload);
        job.admitted = std::chrono::steady_clock::now();
        if (!queue_.tryPush(cls, std::move(job))) {
            // Explicit backpressure: the client backs off and
            // retries instead of the server buffering unboundedly.
            VA_TELEM_COUNT(cls == QueueClass::Serve
                               ? "server.queue.rejected.serve"
                               : "server.queue.rejected.maintain",
                           1);
            sendStatus(*conn, Status::Retry, fh.requestId);
            continue;
        }
        VA_TELEM_HIST("server.queue.depth",
                      static_cast<u64>(queue_.size()));
    }
    conn->open.store(false);
    // Signal EOF to the peer now; the fd itself is closed when the
    // connection is reaped (or at stop()), so the descriptor number
    // cannot be reused while other threads may still reference it.
    ::shutdown(conn->fd, SHUT_RDWR);
    conn->finished.store(true);
}

void
VappServer::workerLoop()
{
    while (auto job = queue_.pop())
        execute(*job);
}

void
VappServer::execute(const ServerJob &job)
{
    switch (job.opcode) {
    case Opcode::GetFrames: handleGetFrames(job); break;
    case Opcode::Put: handlePut(job); break;
    case Opcode::Stat: handleStat(job); break;
    case Opcode::Scrub: handleScrub(job); break;
    case Opcode::Health: answerHealth(job.conn, job.requestId); break;
    }
}

void
VappServer::handleGetFrames(const ServerJob &job)
{
    VA_TELEM_LATENCY("server.op.get_frames");
    GetFramesRequest request;
    if (!parseGetFramesRequest(job.payload, request)) {
        sendStatus(*job.conn, Status::BadRequest, job.requestId);
        return;
    }
    if (request.deadlineMs > 0 &&
        elapsedMs(job.admitted) > request.deadlineMs) {
        // Queued past its deadline: shed it now instead of doing
        // work the client has given up on.
        VA_TELEM_COUNT("server.deadline_expired", 1);
        sendStatus(*job.conn, Status::Deadline, job.requestId);
        return;
    }

    const bool cacheable =
        config_.cacheBytes > 0 && request.injectRawBer == 0.0;
    GopKey cache_key{request.name, request.gop,
                     request.key.empty() ? 0 : crc32(request.key)};
    if (cacheable) {
        if (auto hit = cache_.get(cache_key)) {
            GetFramesResponse response;
            response.status = hit->blocksUncorrectable > 0
                                  ? Status::Partial
                                  : Status::Ok;
            response.width = hit->width;
            response.height = hit->height;
            response.firstFrame = hit->firstFrame;
            response.frameCount = hit->frameCount;
            response.gopCount = hit->gopCount;
            response.fromCache = true;
            response.blocksCorrected = hit->blocksCorrected;
            response.blocksUncorrectable = hit->blocksUncorrectable;
            response.i420 = std::move(hit->i420);
            sendFrame(*job.conn,
                        static_cast<u8>(response.status),
                        job.requestId,
                        serializeGetFramesResponse(response));
            return;
        }
    }

    ArchiveGetOptions options;
    options.injectRawBer = request.injectRawBer;
    options.seed = request.seed;
    options.conceal = request.conceal;
    options.key = request.key;
    ArchiveGetResult result = service_.get(request.name, options);
    if (result.error != ArchiveError::None) {
        Status status = Status::Error;
        if (result.error == ArchiveError::NotFound)
            status = Status::NotFound;
        else if (result.error == ArchiveError::KeyRequired)
            status = Status::KeyRequired;
        sendStatus(*job.conn, status, job.requestId);
        return;
    }

    std::vector<GopRange> ranges =
        gopRanges(result.frameHeaders, result.decoded.frames.size());
    if (request.gop >= ranges.size()) {
        sendStatus(*job.conn, Status::NotFound, job.requestId);
        return;
    }

    GetFramesResponse response;
    response.status = result.cells.blocksUncorrectable > 0
                          ? Status::Partial
                          : Status::Ok;
    if (response.status == Status::Partial)
        VA_TELEM_COUNT("server.partial_responses", 1);
    response.width =
        static_cast<u16>(result.decoded.width());
    response.height =
        static_cast<u16>(result.decoded.height());
    response.gopCount = static_cast<u32>(ranges.size());
    response.blocksCorrected = result.cells.blocksCorrected;
    response.blocksUncorrectable = result.cells.blocksUncorrectable;

    // One decode produced every GOP of the video: cache them all so
    // the next hot read of any GOP skips the whole read path.
    for (std::size_t g = 0; g < ranges.size(); ++g) {
        DecodedGop gop;
        gop.width = response.width;
        gop.height = response.height;
        gop.firstFrame = ranges[g].firstFrame;
        gop.frameCount = ranges[g].frameCount;
        gop.gopCount = response.gopCount;
        gop.blocksCorrected = response.blocksCorrected;
        gop.blocksUncorrectable = response.blocksUncorrectable;
        gop.i420 = packFramesI420(result.decoded,
                                  ranges[g].firstFrame,
                                  ranges[g].frameCount);
        if (g == request.gop) {
            response.firstFrame = gop.firstFrame;
            response.frameCount = gop.frameCount;
            response.i420 = gop.i420;
        }
        if (cacheable)
            cache_.put(GopKey{request.name, static_cast<u32>(g),
                              cache_key.keyId},
                       std::move(gop));
    }
    sendFrame(*job.conn, static_cast<u8>(response.status),
                job.requestId,
                serializeGetFramesResponse(response));
}

void
VappServer::handlePut(const ServerJob &job)
{
    VA_TELEM_LATENCY("server.op.put");
    PutRequest request;
    if (!parsePutRequest(job.payload, request) ||
        request.cipherMode > static_cast<u8>(CipherMode::CFB)) {
        sendStatus(*job.conn, Status::BadRequest, job.requestId);
        return;
    }

    Video video;
    const std::size_t luma =
        static_cast<std::size_t>(request.width) * request.height;
    const std::size_t frame_bytes = luma * 3 / 2;
    video.frames.reserve(request.frameCount);
    for (u32 f = 0; f < request.frameCount; ++f) {
        Frame frame(request.width, request.height);
        const u8 *src = request.i420.data() + f * frame_bytes;
        std::memcpy(frame.y().data().data(), src, luma);
        std::memcpy(frame.u().data().data(), src + luma, luma / 4);
        std::memcpy(frame.v().data().data(),
                    src + luma + luma / 4, luma / 4);
        video.frames.push_back(std::move(frame));
    }

    PreparedVideo prepared = prepareVideo(
        video, EncoderConfig{}, EccAssignment::paperTable1());
    ArchivePutOptions options;
    if (!request.key.empty()) {
        EncryptionConfig enc;
        enc.mode = static_cast<CipherMode>(request.cipherMode);
        enc.key = request.key;
        enc.keyId = request.keyId;
        // Same nonce derivation as the CLI: reproducible per
        // (seed, name), distinct across names under one key.
        Rng iv_rng(Rng::deriveSeed(
            request.ivSeed,
            std::hash<std::string>{}(request.name)));
        for (auto &b : enc.masterIv)
            b = static_cast<u8>(iv_rng.next());
        options.encryption = enc;
    }
    if (service_.put(request.name, prepared, options) !=
        ArchiveError::None) {
        sendStatus(*job.conn, Status::Error, job.requestId);
        return;
    }
    cache_.eraseVideo(request.name);

    PutResponse response;
    response.status = Status::Ok;
    response.payloadBytes = prepared.payloadBits() / 8;
    for (const ArchiveVideoStat &s : service_.stat())
        if (s.name == request.name)
            response.cellBytes = s.cellBytes;
    sendFrame(*job.conn, static_cast<u8>(response.status),
                job.requestId, serializePutResponse(response));
}

void
VappServer::handleStat(const ServerJob &job)
{
    VA_TELEM_LATENCY("server.op.stat");
    StatResponse response;
    response.status = Status::Ok;
    response.videos = service_.stat();
    sendFrame(*job.conn, static_cast<u8>(response.status),
                job.requestId, serializeStatResponse(response));
}

void
VappServer::handleScrub(const ServerJob &job)
{
    VA_TELEM_LATENCY("server.op.scrub");
    ScrubRequest request;
    if (!parseScrubRequest(job.payload, request)) {
        sendStatus(*job.conn, Status::BadRequest, job.requestId);
        return;
    }
    ScrubOptions options;
    options.ageRawBer = request.ageRawBer;
    options.seed = request.seed;
    ScrubReport report = service_.scrub(options);
    // A scrub (with aging) may have changed any stream's cells:
    // every cached decode is stale.
    cache_.clear();

    ScrubResponse response;
    response.status = Status::Ok;
    response.videos = report.videos;
    response.streams = report.streams;
    response.blocksRead = report.cells.blocksRead;
    response.blocksRewritten = report.blocksRewritten;
    response.bitsCorrected = report.cells.bitsCorrected;
    response.blocksUncorrectable = report.cells.blocksUncorrectable;
    response.streamsMiscorrected = report.streamsMiscorrected;
    response.streamsDamaged = report.streamsDamaged;
    sendFrame(*job.conn, static_cast<u8>(response.status),
                job.requestId, serializeScrubResponse(response));
}

void
VappServer::answerHealth(const std::shared_ptr<Connection> &conn,
                         u32 request_id)
{
    HealthResponse response;
    response.status = Status::Ok;
    response.queueDepth = static_cast<u32>(queue_.size());
    response.queueCapacity = static_cast<u32>(queue_.capacity());
    response.queueHighWater =
        static_cast<u32>(queue_.highWater());
    response.queueRejected = queue_.rejectedTotal();
    response.cacheBytes = cache_.bytes();
    response.cacheEntries = cache_.entries();
    response.videos = service_.videoCount();
    sendFrame(*conn, static_cast<u8>(response.status), request_id,
                serializeHealthResponse(response));
}

} // namespace videoapp
