#include "server/vapp_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <deque>
#include <functional>
#include <mutex>

#include "common/crc32.h"
#include "common/telemetry.h"

namespace videoapp {

/**
 * One response frame queued for a nonblocking write, as up to three
 * segments so cached payloads are never copied:
 *
 *   seg 0: head — frame header (or the whole owned frame)
 *   seg 1: pin->payload — the shared cache entry's bytes
 *   seg 2: tail — the 4-byte memoized payload CRC
 *
 * (seg, off) is the write cursor; a partial send parks here until
 * EPOLLOUT says the socket drained.
 */
struct VappServer::OutboundFrame
{
    Bytes head;
    CachedGopPtr pin;
    Bytes tail;
    unsigned seg = 0;
    std::size_t off = 0;
};

struct VappServer::Connection
{
    /** Owned (and closed) by the event loop thread exclusively. */
    int fd = -1;
    /** Loop-thread only: incremental frame reassembly. */
    FrameDeframer deframer;
    /** Loop-thread only: EPOLLOUT armed. */
    bool wantWrite = false;
    /** Loop-thread only: EOF or fatal framing; reads disarmed. */
    bool readClosed = false;
    /** Loop-thread only: close once the outbox drains. */
    bool closeAfterFlush = false;

    /** Guards outbox / open / queuedForWrite (workers + loop). */
    std::mutex mutex;
    std::deque<OutboundFrame> outbox;
    bool queuedForWrite = false;
    /** False once the connection is lost: responses are dropped. */
    bool open = true;
};

namespace {

u32
elapsedMs(std::chrono::steady_clock::time_point since)
{
    auto ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - since)
            .count();
    return ms > 0 ? static_cast<u32>(ms) : 0;
}

u32
keyIdOf(const Bytes &key)
{
    return key.empty() ? 0 : crc32(key);
}

/** Flight registry key: one in-flight decode per (video, key id). */
std::string
flightKeyOf(const std::string &name, u32 key_id)
{
    std::string key = name;
    key.push_back('\0');
    key += std::to_string(key_id);
    return key;
}

bool
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 &&
           ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

} // namespace

VappServer::VappServer(ArchiveService &service,
                       VappServerConfig config)
    : service_(service), config_(config),
      queue_(config.queueCapacity), cache_(config.cacheBytes)
{}

VappServer::~VappServer()
{
    stop();
}

bool
VappServer::start()
{
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return false;
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) < 0 ||
        ::listen(listenFd_, 128) < 0 ||
        !setNonBlocking(listenFd_)) {
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    socklen_t len = sizeof addr;
    if (::getsockname(listenFd_,
                      reinterpret_cast<sockaddr *>(&addr),
                      &len) == 0)
        port_ = ntohs(addr.sin_port);

    epollFd_ = ::epoll_create1(0);
    wakeFd_ = ::eventfd(0, EFD_NONBLOCK);
    auto bail = [this] {
        if (epollFd_ >= 0)
            ::close(epollFd_);
        if (wakeFd_ >= 0)
            ::close(wakeFd_);
        ::close(listenFd_);
        listenFd_ = epollFd_ = wakeFd_ = -1;
        return false;
    };
    if (epollFd_ < 0 || wakeFd_ < 0)
        return bail();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listenFd_;
    if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, listenFd_, &ev) < 0)
        return bail();
    ev.data.fd = wakeFd_;
    if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, wakeFd_, &ev) < 0)
        return bail();

    started_ = true;
    int workers = config_.workers > 0 ? config_.workers : 1;
    workers_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    loopThread_ = std::thread([this] { eventLoop(); });
    return true;
}

void
VappServer::stop()
{
    if (!started_ || stopped_)
        return;
    stopped_ = true;

    // 1. Stop accepting (the loop closes the listen socket).
    stopAccept_.store(true);
    wakeLoop();
    // 2. Close the queue: admitted jobs drain to their responses
    //    while the event loop is still flushing outboxes.
    queue_.close();
    for (std::thread &w : workers_)
        if (w.joinable())
            w.join();
    workers_.clear();
    // 3. Flush whatever the workers produced, then exit the loop.
    draining_.store(true);
    wakeLoop();
    if (loopThread_.joinable())
        loopThread_.join();

    if (epollFd_ >= 0) {
        ::close(epollFd_);
        epollFd_ = -1;
    }
    if (wakeFd_ >= 0) {
        ::close(wakeFd_);
        wakeFd_ = -1;
    }
}

void
VappServer::setDrainPaused(bool paused)
{
    queue_.setDrainPaused(paused);
}

void
VappServer::wakeLoop()
{
    u64 one = 1;
    [[maybe_unused]] ssize_t n =
        ::write(wakeFd_, &one, sizeof one);
}

// --- event loop --------------------------------------------------------

void
VappServer::eventLoop()
{
    loopThreadId_.store(std::this_thread::get_id());
    std::vector<epoll_event> events(64);
    std::chrono::steady_clock::time_point drain_deadline{};
    bool drain_started = false;
    for (;;) {
        int timeout = draining_.load() ? 5 : -1;
        int n = ::epoll_wait(epollFd_, events.data(),
                             static_cast<int>(events.size()),
                             timeout);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        VA_TELEM_COUNT("server.epoll_wakeups", 1);
        for (int i = 0; i < n; ++i) {
            const int fd = events[i].data.fd;
            const u32 mask = events[i].events;
            if (fd == wakeFd_) {
                u64 v = 0;
                [[maybe_unused]] ssize_t r =
                    ::read(wakeFd_, &v, sizeof v);
                continue;
            }
            if (fd == listenFd_) {
                acceptAll();
                continue;
            }
            auto it = conns_.find(fd);
            if (it == conns_.end())
                continue; // closed earlier in this batch
            std::shared_ptr<Connection> conn = it->second;
            if (mask & (EPOLLHUP | EPOLLERR)) {
                closeConnection(conn);
                continue;
            }
            if (mask & EPOLLIN)
                onReadable(conn);
            if (conn->fd >= 0 && (mask & EPOLLOUT))
                flushOutbox(conn);
        }
        processWriteReady();

        if (stopAccept_.load() && listenFd_ >= 0) {
            ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, listenFd_,
                        nullptr);
            ::close(listenFd_);
            listenFd_ = -1;
        }
        if (draining_.load()) {
            if (!drain_started) {
                drain_started = true;
                drain_deadline = std::chrono::steady_clock::now() +
                                 std::chrono::seconds(3);
            }
            if (drainForExit() ||
                std::chrono::steady_clock::now() > drain_deadline)
                break;
        }
    }
    // Tear down every connection; queued responses for clients that
    // never drained past the deadline are abandoned here.
    std::vector<std::shared_ptr<Connection>> leftover;
    leftover.reserve(conns_.size());
    for (auto &[fd, conn] : conns_)
        leftover.push_back(conn);
    for (auto &conn : leftover)
        closeConnection(conn);
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
}

void
VappServer::acceptAll()
{
    for (;;) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break; // EAGAIN: accept queue drained
        }
        if (!setNonBlocking(fd)) {
            ::close(fd);
            continue;
        }
        int nodelay = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay,
                     sizeof nodelay);
        if (config_.sndbufBytes > 0)
            ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF,
                         &config_.sndbufBytes,
                         sizeof config_.sndbufBytes);
        VA_TELEM_COUNT("server.connections", 1);
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        conns_[fd] = conn;
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
            conns_.erase(fd);
            ::close(fd);
        }
    }
}

void
VappServer::updateEpoll(const std::shared_ptr<Connection> &conn)
{
    if (conn->fd < 0)
        return;
    epoll_event ev{};
    ev.events = (conn->readClosed ? 0u : u32{EPOLLIN}) |
                (conn->wantWrite ? u32{EPOLLOUT} : 0u);
    ev.data.fd = conn->fd;
    ::epoll_ctl(epollFd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void
VappServer::closeConnection(const std::shared_ptr<Connection> &conn)
{
    if (conn->fd < 0)
        return;
    {
        std::lock_guard lock(conn->mutex);
        conn->open = false;
        conn->outbox.clear();
    }
    ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    conns_.erase(conn->fd);
    ::close(conn->fd);
    conn->fd = -1;
}

void
VappServer::onReadable(const std::shared_ptr<Connection> &conn)
{
    if (conn->fd < 0 || conn->readClosed)
        return;
    u8 buf[64 * 1024];
    // Bounded reads per wakeup keep one firehose connection from
    // starving the rest; level-triggered epoll re-reports leftovers.
    for (int round = 0; round < 16; ++round) {
        ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
        if (n > 0) {
            conn->deframer.feed(buf,
                                static_cast<std::size_t>(n));
            if (!processFrames(conn))
                return;
            if (static_cast<std::size_t>(n) < sizeof buf)
                break;
            continue;
        }
        if (n == 0) {
            // Peer EOF. Our clients never half-close, so the
            // connection is done; any response still queued has no
            // reader (same as the blocking server's shutdown).
            closeConnection(conn);
            return;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        closeConnection(conn);
        return;
    }
}

bool
VappServer::processFrames(const std::shared_ptr<Connection> &conn)
{
    FrameDeframer::Decoded frame;
    for (;;) {
        if (conn->fd < 0)
            return false;
        switch (conn->deframer.next(frame)) {
        case FrameDeframer::Result::NeedMore: return true;
        case FrameDeframer::Result::Error:
            VA_TELEM_COUNT("server.frames.bad", 1);
            if (conn->deframer.fatal()) {
                // Framing lost (bad magic/version/CRC/length):
                // answer once, flush, drop — a byte stream cannot
                // be resynchronized.
                respondStatus(conn, Status::BadRequest, 0);
                conn->readClosed = true;
                conn->closeAfterFlush = true;
                if (conn->fd >= 0) {
                    updateEpoll(conn);
                    flushOutbox(conn);
                }
                return false;
            }
            // Framing held, the body is corrupt: report and keep
            // the connection (the stream is still in sync).
            respondStatus(conn, Status::BadRequest,
                          frame.header.requestId);
            continue;
        case FrameDeframer::Result::Frame:
            handleFrame(conn, frame.header,
                        std::move(frame.payload));
            continue;
        }
    }
}

void
VappServer::handleFrame(const std::shared_ptr<Connection> &conn,
                        const WireFrameHeader &header,
                        Bytes payload)
{
    if (header.kind > static_cast<u8>(Opcode::CellPush)) {
        VA_TELEM_COUNT("server.frames.bad", 1);
        respondStatus(conn, Status::BadRequest, header.requestId);
        return;
    }
    Opcode op = static_cast<Opcode>(header.kind);
    VA_TELEM_COUNT("server.requests", 1);
    if (op == Opcode::Health) {
        // Served off-queue: liveness probes must work while the
        // queue is saturated.
        answerHealth(conn, header.requestId);
        return;
    }
    if (op == Opcode::ClusterInfo) {
        // Topology is a cheap in-memory snapshot: served inline
        // like HEALTH so clients can refresh placement even while
        // the queue is saturated. Standalone servers answer Error.
        if (config_.cluster == nullptr) {
            respondStatus(conn, Status::Error, header.requestId);
            return;
        }
        respondPayload(conn, static_cast<u8>(Status::Ok),
                       header.requestId,
                       config_.cluster->infoPayload());
        return;
    }

    // Cluster routing: a name-carrying request for a video another
    // shard owns is relayed there on the client's behalf — one hop,
    // never a loop (the forwarded flag makes the peer serve it
    // locally no matter what its ring says).
    bool forward = false;
    u32 forward_shard = 0;
    if (config_.cluster != nullptr &&
        (op == Opcode::GetFrames || op == Opcode::Put) &&
        (header.flags & kWireFlagForwarded) == 0) {
        if (std::optional<std::string> name =
                peekRequestName(payload)) {
            const u32 owner = config_.cluster->ownerOf(*name);
            if (owner != config_.cluster->selfShard()) {
                forward = true;
                forward_shard = owner;
            }
        }
    }

    std::string flight_key;
    bool shed = false;
    if (!forward && op == Opcode::GetFrames) {
        GetFramesRequest request;
        if (!parseGetFramesRequest(payload, request)) {
            respondStatus(conn, Status::BadRequest,
                          header.requestId);
            return;
        }
        const bool exact = request.injectRawBer == 0.0;
        const u32 key_id = keyIdOf(request.key);
        if (exact && config_.cacheBytes > 0) {
            if (CachedGopPtr hit = cache_.get(
                    GopKey{request.name, request.gop, key_id})) {
                // Hot path: the pre-serialized entry goes straight
                // to the socket, no queue slot, no worker, no copy.
                // Cache hits are free, so they stay full-fidelity
                // even when admission is shedding.
                respondCached(conn, header.requestId,
                              std::move(hit));
                return;
            }
        }
        // Queue pressure at admission: with shedding enabled, a GET
        // admitted while the queue sits at 3/4 capacity or more is
        // marked for reduced-fidelity service. Shed jobs never lead
        // or join flights (their decode is not the full-fidelity one
        // the waiters expect) and are never cached.
        shed = config_.shedThreshold > 0 &&
               queue_.size() * 4 >= config_.queueCapacity * 3;
        if (shed)
            VA_TELEM_COUNT("server.shed.admissions", 1);
        if (!shed && exact && request.deadlineMs == 0) {
            // Single flight: register (or join) the decode for this
            // (video, key id). Registration happens here, on the
            // one admission thread, so "N concurrent cold GETs ->
            // one decode" is deterministic. Deadline-carrying and
            // injected reads bypass coalescing: the former must be
            // sheddable while queued, the latter are stochastic
            // experiments with per-request seeds.
            flight_key = flightKeyOf(request.name, key_id);
            std::lock_guard lock(flightsMutex_);
            auto [it, fresh] = flights_.try_emplace(flight_key);
            if (!fresh) {
                it->second.waiters.push_back(
                    {conn, header.requestId, request.gop});
                coalescedGets_.fetch_add(
                    1, std::memory_order_relaxed);
                VA_TELEM_COUNT("server.coalesced", 1);
                return;
            }
        }
    }

    // Node-to-node replication and migration traffic rides the
    // maintenance class with puts and scrubs so it never crowds out
    // serving.
    QueueClass cls = (op == Opcode::Put || op == Opcode::Scrub ||
                      op == Opcode::MetaPut ||
                      op == Opcode::MetaGet ||
                      op == Opcode::CellPull ||
                      op == Opcode::CellPush)
                         ? QueueClass::Maintain
                         : QueueClass::Serve;
    ServerJob job;
    job.conn = conn;
    job.opcode = op;
    job.requestId = header.requestId;
    job.payload = std::move(payload);
    job.admitted = std::chrono::steady_clock::now();
    job.flightKey = flight_key;
    job.forward = forward;
    job.forwardShard = forward_shard;
    job.shed = shed;
    if (!queue_.tryPush(cls, std::move(job))) {
        // Explicit backpressure: the client backs off and retries
        // instead of the server buffering unboundedly. A leader
        // that could not be queued has no waiters yet (this thread
        // is the only one that attaches them), so the flight just
        // unregisters.
        if (!flight_key.empty()) {
            std::lock_guard lock(flightsMutex_);
            flights_.erase(flight_key);
        }
        // Two call sites, not a ternary name: VA_TELEM_COUNT caches
        // the counter in a per-callsite static.
        if (cls == QueueClass::Serve)
            VA_TELEM_COUNT("server.queue.rejected.serve", 1);
        else
            VA_TELEM_COUNT("server.queue.rejected.maintain", 1);
        respondStatus(conn, Status::Retry, header.requestId);
        return;
    }
    VA_TELEM_HIST("server.queue.depth",
                  static_cast<u64>(queue_.size()));
}

void
VappServer::flushOutbox(const std::shared_ptr<Connection> &conn)
{
    if (conn->fd < 0)
        return;
    std::unique_lock lock(conn->mutex);
    while (!conn->outbox.empty()) {
        OutboundFrame &f = conn->outbox.front();
        auto segSize = [&f](unsigned seg) -> std::size_t {
            if (seg == 0)
                return f.head.size();
            if (seg == 1)
                return f.pin ? f.pin->payload.size() : 0;
            return f.tail.size();
        };
        while (f.seg <= 2 && f.off >= segSize(f.seg)) {
            ++f.seg;
            f.off = 0;
        }
        if (f.seg > 2) {
            conn->outbox.pop_front();
            continue;
        }
        // Gather every unwritten byte of the frame into one
        // sendmsg: writing header, payload, and CRC tail as three
        // separate sends would leave the 4-byte tail parked behind
        // Nagle waiting on a delayed ACK (~40 ms per response).
        struct iovec iov[3];
        unsigned iovcnt = 0;
        for (unsigned seg = f.seg; seg <= 2; ++seg) {
            std::size_t off = seg == f.seg ? f.off : 0;
            std::size_t size = segSize(seg);
            if (off >= size)
                continue;
            const u8 *data = seg == 0   ? f.head.data()
                             : seg == 1 ? f.pin->payload.data()
                                        : f.tail.data();
            iov[iovcnt].iov_base =
                const_cast<u8 *>(data + off);
            iov[iovcnt].iov_len = size - off;
            ++iovcnt;
        }
        msghdr msg{};
        msg.msg_iov = iov;
        msg.msg_iovlen = iovcnt;
        ssize_t n = ::sendmsg(conn->fd, &msg, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                // Socket full: park the cursor and let EPOLLOUT
                // resume the write. The histogram tracks how
                // much is parked when stalls happen.
                std::size_t pending = 0;
                for (const OutboundFrame &p : conn->outbox)
                    pending +=
                        p.head.size() + p.tail.size() +
                        (p.pin ? p.pin->payload.size() : 0);
                VA_TELEM_COUNT("server.write_stalls", 1);
                VA_TELEM_HIST("server.write_stall.bytes",
                              static_cast<u64>(pending));
                if (!conn->wantWrite) {
                    conn->wantWrite = true;
                    lock.unlock();
                    updateEpoll(conn);
                }
                return;
            }
            lock.unlock();
            closeConnection(conn);
            return;
        }
        std::size_t advance = static_cast<std::size_t>(n);
        while (f.seg <= 2) {
            std::size_t left = segSize(f.seg) - f.off;
            if (advance < left) {
                f.off += advance;
                break;
            }
            advance -= left;
            ++f.seg;
            f.off = 0;
        }
    }
    const bool close_now = conn->closeAfterFlush;
    const bool disarm = conn->wantWrite;
    if (disarm)
        conn->wantWrite = false;
    lock.unlock();
    if (disarm)
        updateEpoll(conn);
    if (close_now)
        closeConnection(conn);
}

void
VappServer::processWriteReady()
{
    std::vector<std::shared_ptr<Connection>> ready;
    {
        std::lock_guard lock(writeReadyMutex_);
        ready.swap(writeReady_);
    }
    for (auto &conn : ready) {
        {
            std::lock_guard lock(conn->mutex);
            conn->queuedForWrite = false;
        }
        flushOutbox(conn);
    }
}

bool
VappServer::drainForExit()
{
    std::vector<std::shared_ptr<Connection>> conns;
    conns.reserve(conns_.size());
    for (auto &[fd, conn] : conns_)
        conns.push_back(conn);
    bool all_empty = true;
    for (auto &conn : conns) {
        flushOutbox(conn);
        if (conn->fd < 0)
            continue;
        std::lock_guard lock(conn->mutex);
        if (!conn->outbox.empty())
            all_empty = false;
    }
    return all_empty;
}

void
VappServer::enqueueResponse(
    const std::shared_ptr<Connection> &conn, OutboundFrame frame)
{
    bool notify = false;
    {
        std::lock_guard lock(conn->mutex);
        if (!conn->open)
            return; // connection lost: response has no reader
        conn->outbox.push_back(std::move(frame));
        if (!conn->queuedForWrite) {
            conn->queuedForWrite = true;
            notify = true;
        }
    }
    if (std::this_thread::get_id() == loopThreadId_.load()) {
        // Inline answers (HEALTH, Retry, BadRequest, cache hits)
        // flush immediately — no eventfd round trip.
        {
            std::lock_guard lock(conn->mutex);
            conn->queuedForWrite = false;
        }
        flushOutbox(conn);
        return;
    }
    if (notify) {
        {
            std::lock_guard lock(writeReadyMutex_);
            writeReady_.push_back(conn);
        }
        wakeLoop();
    }
}

void
VappServer::respondPayload(const std::shared_ptr<Connection> &conn,
                           u8 kind, u32 request_id,
                           const Bytes &payload)
{
    OutboundFrame frame;
    frame.head = encodeFrame(kind, request_id, payload);
    enqueueResponse(conn, std::move(frame));
}

void
VappServer::respondStatus(const std::shared_ptr<Connection> &conn,
                          Status status, u32 request_id)
{
    respondPayload(conn, static_cast<u8>(status), request_id,
                   serializeStatusOnly(status));
}

void
VappServer::respondCached(const std::shared_ptr<Connection> &conn,
                          u32 request_id, CachedGopPtr gop)
{
    OutboundFrame frame;
    const u8 kind = static_cast<u8>(
        gop->partial ? Status::Partial : Status::Ok);
    frame.head = encodeFrameHeader(
        kind, request_id, static_cast<u32>(gop->payload.size()));
    frame.tail = encodeBe32(gop->payloadCrc);
    frame.pin = std::move(gop);
    enqueueResponse(conn, std::move(frame));
}

// --- workers -----------------------------------------------------------

void
VappServer::workerLoop()
{
    // Batched drain: a coalesced admission burst costs the pool one
    // wakeup, and one worker amortizes its queue lock across jobs.
    constexpr std::size_t kBatch = 4;
    for (;;) {
        std::vector<ServerJob> batch = queue_.popBatch(kBatch);
        if (batch.empty())
            return; // closed and drained
        for (ServerJob &job : batch)
            execute(job);
    }
}

void
VappServer::execute(const ServerJob &job)
{
    if (job.forward) {
        handleForward(job);
        return;
    }
    switch (job.opcode) {
    case Opcode::GetFrames: handleGetFrames(job); break;
    case Opcode::Put: handlePut(job); break;
    case Opcode::Stat: handleStat(job); break;
    case Opcode::Scrub: handleScrub(job); break;
    case Opcode::MetaPut: handleMetaPut(job); break;
    case Opcode::MetaGet: handleMetaGet(job); break;
    case Opcode::CellPull: handleCellPull(job); break;
    case Opcode::CellPush: handleCellPush(job); break;
    case Opcode::Health: answerHealth(job.conn, job.requestId); break;
    case Opcode::ClusterInfo: break; // answered inline at admission
    }
}

void
VappServer::handleForward(const ServerJob &job)
{
    VA_TELEM_LATENCY("server.op.forward");
    u8 kind = 0;
    Bytes response;
    if (!config_.cluster->forward(job.forwardShard, job.opcode,
                                  job.payload, kind, response)) {
        // The owner is unreachable: tell the client to back off and
        // retry (its retry policy may pick a healthier entry point).
        VA_TELEM_COUNT("server.forward_failures", 1);
        respondStatus(job.conn, Status::Retry, job.requestId);
        return;
    }
    VA_TELEM_COUNT("server.forwards", 1);
    respondPayload(job.conn, kind, job.requestId, response);
}

void
VappServer::handleMetaPut(const ServerJob &job)
{
    VA_TELEM_LATENCY("server.op.meta_put");
    MetaPutRequest request;
    if (!parseMetaPutRequest(job.payload, request)) {
        respondStatus(job.conn, Status::BadRequest, job.requestId);
        return;
    }
    if (service_.putReplicaMeta(request.name,
                                std::move(request.meta)) !=
        ArchiveError::None) {
        respondStatus(job.conn, Status::BadRequest, job.requestId);
        return;
    }
    respondStatus(job.conn, Status::Ok, job.requestId);
}

void
VappServer::handleMetaGet(const ServerJob &job)
{
    VA_TELEM_LATENCY("server.op.meta_get");
    MetaGetRequest request;
    if (!parseMetaGetRequest(job.payload, request)) {
        respondStatus(job.conn, Status::BadRequest, job.requestId);
        return;
    }
    MetaGetResponse response;
    response.meta = service_.replicaMeta(request.name);
    if (response.meta.empty()) {
        respondStatus(job.conn, Status::NotFound, job.requestId);
        return;
    }
    response.status = Status::Ok;
    respondPayload(job.conn, static_cast<u8>(response.status),
                   job.requestId,
                   serializeMetaGetResponse(response));
}

void
VappServer::handleCellPull(const ServerJob &job)
{
    VA_TELEM_LATENCY("server.op.cell_pull");
    CellPullRequest request;
    if (!parseCellPullRequest(job.payload, request)) {
        respondStatus(job.conn, Status::BadRequest, job.requestId);
        return;
    }
    CellPullResponse response;
    response.record = service_.exportRecord(request.name);
    if (response.record.empty()) {
        respondStatus(job.conn, Status::NotFound, job.requestId);
        return;
    }
    response.status = Status::Ok;
    VA_TELEM_COUNT("server.cell_pulls", 1);
    respondPayload(job.conn, static_cast<u8>(response.status),
                   job.requestId,
                   serializeCellPullResponse(response));
}

void
VappServer::handleCellPush(const ServerJob &job)
{
    VA_TELEM_LATENCY("server.op.cell_push");
    CellPushRequest request;
    if (!parseCellPushRequest(job.payload, request)) {
        respondStatus(job.conn, Status::BadRequest, job.requestId);
        return;
    }
    bool adopted = false;
    if (service_.adoptRecord(request.name, request.record,
                             request.overwrite, &adopted) !=
        ArchiveError::None) {
        respondStatus(job.conn, Status::BadRequest, job.requestId);
        return;
    }
    // Whether this push or a concurrent local PUT won, the name's
    // migration is settled: stop deferring local misses to the old
    // holder. An adopted record also re-replicates its precise meta
    // from its new home and invalidates stale cached decodes.
    if (config_.cluster != nullptr)
        config_.cluster->clearPendingMigration(request.name);
    if (adopted) {
        cache_.eraseVideo(request.name);
        if (config_.cluster != nullptr)
            config_.cluster->replicateMeta(request.name);
        VA_TELEM_COUNT("server.cell_pushes", 1);
    }
    CellPushResponse response;
    response.status = Status::Ok;
    response.adopted = adopted;
    respondPayload(job.conn, static_cast<u8>(response.status),
                   job.requestId,
                   serializeCellPushResponse(response));
}

void
VappServer::answerWrongEpoch(const ServerJob &job)
{
    // A WRONG_EPOCH response carries the full ClusterInfo body with
    // the status byte patched, so one round trip both rejects the
    // stale request and hands the client the ring it should have
    // routed under.
    Bytes payload = config_.cluster->infoPayload();
    if (!payload.empty())
        payload[0] = static_cast<u8>(Status::WrongEpoch);
    VA_TELEM_COUNT("server.wrong_epoch", 1);
    respondPayload(job.conn, static_cast<u8>(Status::WrongEpoch),
                   job.requestId, payload);
}

void
VappServer::finishFlight(const std::string &key,
                         const std::vector<CachedGopPtr> &table)
{
    std::vector<Waiter> waiters;
    {
        std::lock_guard lock(flightsMutex_);
        auto it = flights_.find(key);
        if (it == flights_.end())
            return;
        waiters = std::move(it->second.waiters);
        flights_.erase(it);
    }
    for (const Waiter &w : waiters) {
        if (w.gop < table.size() && table[w.gop])
            respondCached(w.conn, w.requestId, table[w.gop]);
        else
            respondStatus(w.conn, Status::NotFound, w.requestId);
    }
}

void
VappServer::failFlight(const std::string &key, Status status)
{
    std::vector<Waiter> waiters;
    {
        std::lock_guard lock(flightsMutex_);
        auto it = flights_.find(key);
        if (it == flights_.end())
            return;
        waiters = std::move(it->second.waiters);
        flights_.erase(it);
    }
    for (const Waiter &w : waiters)
        respondStatus(w.conn, status, w.requestId);
}

bool
VappServer::completeFlightFromCache(const ServerJob &job,
                                    const GetFramesRequest &request,
                                    CachedGopPtr hit)
{
    // The leader's own GOP is cached — assemble the whole video's
    // table from cache so the waiters (who may want sibling GOPs)
    // are served too. Any evicted sibling forces a fresh decode.
    const u32 key_id = keyIdOf(request.key);
    std::vector<CachedGopPtr> table(hit->gopCount);
    for (u32 g = 0; g < hit->gopCount; ++g) {
        table[g] = g == request.gop
                       ? hit
                       : cache_.get(GopKey{request.name, g, key_id});
        if (!table[g])
            return false;
    }
    finishFlight(job.flightKey, table);
    respondCached(job.conn, job.requestId, std::move(hit));
    return true;
}

void
VappServer::handleGetFrames(const ServerJob &job)
{
    VA_TELEM_LATENCY("server.op.get_frames");
    GetFramesRequest request;
    if (!parseGetFramesRequest(job.payload, request)) {
        respondStatus(job.conn, Status::BadRequest, job.requestId);
        return;
    }
    const bool leader = !job.flightKey.empty();
    if (config_.cluster != nullptr && request.ringEpoch != 0 &&
        request.ringEpoch < config_.cluster->ringEpoch()) {
        // The client routed under a ring this node has already moved
        // past: refuse with the fresh membership so it re-routes,
        // instead of serving (or missing) under stale placement.
        if (leader)
            failFlight(job.flightKey, Status::WrongEpoch);
        answerWrongEpoch(job);
        return;
    }
    if (request.deadlineMs > 0 &&
        elapsedMs(job.admitted) > request.deadlineMs) {
        // Queued past its deadline: shed it now instead of doing
        // work the client has given up on. (Deadline-carrying
        // requests never lead flights, so nobody waits on this.)
        VA_TELEM_COUNT("server.deadline_expired", 1);
        respondStatus(job.conn, Status::Deadline, job.requestId);
        return;
    }
    bool shed = job.shed;
    if (!shed && config_.shedThreshold > 0 &&
        request.deadlineMs > 0 &&
        elapsedMs(job.admitted) * 2 > request.deadlineMs) {
        // Deadline risk: more than half the budget burned in the
        // queue. A reduced read is the difference between Degraded
        // and a Deadline miss. (Deadline-carrying requests never
        // lead flights, so shedding here strands no waiters.)
        shed = true;
        VA_TELEM_COUNT("server.shed.deadline_risk", 1);
    }

    // Shed decodes are reduced-fidelity: they must never seed the
    // full-fidelity GOP cache.
    const bool cacheable = config_.cacheBytes > 0 &&
                           request.injectRawBer == 0.0 && !shed;
    const u32 key_id = keyIdOf(request.key);
    GopKey cache_key{request.name, request.gop, key_id};
    if (cacheable) {
        if (CachedGopPtr hit = cache_.get(cache_key)) {
            // Admission raced a concurrent fill; serve from cache.
            // A leader still owes its waiters the full table.
            if (!leader) {
                respondCached(job.conn, job.requestId,
                              std::move(hit));
                return;
            }
            if (completeFlightFromCache(job, request,
                                        std::move(hit)))
                return;
        }
    }

    // Decode leaders build every BCH table the video needs before
    // the read fans out: one construction pays for every block
    // decode of every coalesced request in this flight.
    if (leader)
        service_.prewarmCodes(request.name);

    ArchiveGetOptions options;
    options.injectRawBer = request.injectRawBer;
    options.seed = request.seed;
    // Shed streams come back zero-filled; concealment keeps their
    // macroblocks watchable instead of garbage.
    options.conceal = request.conceal || shed;
    options.key = request.key;
    options.shedDegradeClass = shed ? config_.shedThreshold : 0;
    ArchiveGetResult result = service_.get(request.name, options);
    if (result.error == ArchiveError::CrcMismatch &&
        config_.cluster != nullptr) {
        // The precise metadata failed its integrity check but the
        // (ECC-protected, single-copy) cells may be fine: pull the
        // replicated meta blob from a ring successor, re-anchor the
        // record, and retry the read once.
        Bytes meta;
        if (config_.cluster->fetchReplicaMeta(request.name, meta) &&
            service_.repairMeta(request.name, meta) ==
                ArchiveError::None) {
            VA_TELEM_COUNT("server.get.meta_repaired", 1);
            result = service_.get(request.name, options);
        }
    }
    if (result.error == ArchiveError::NotFound &&
        config_.cluster != nullptr) {
        if (auto source = config_.cluster->pendingMigrationSource(
                request.name)) {
            // Migration race: this node owns the name under the new
            // ring but the record has not arrived yet. Pull it from
            // the holder now (adopt-if-absent: a concurrent PUT here
            // wins) and serve as if it had always been local.
            Bytes blob;
            if (config_.cluster->pullRecord(*source, request.name,
                                            blob) &&
                service_.adoptRecord(request.name, blob,
                                     /*overwrite=*/false) ==
                    ArchiveError::None) {
                config_.cluster->clearPendingMigration(
                    request.name);
                config_.cluster->replicateMeta(request.name);
                VA_TELEM_COUNT("server.get.pull_through", 1);
                result = service_.get(request.name, options);
            } else {
                // The holder is unreachable; the record still
                // exists there, so NotFound would lie. Back off.
                if (leader)
                    failFlight(job.flightKey, Status::Retry);
                respondStatus(job.conn, Status::Retry,
                              job.requestId);
                return;
            }
        }
    }
    if (result.error == ArchiveError::NotFound &&
        request.allowReplica) {
        // Router fallback after an owner timeout: reconstruct a
        // best-effort degraded video from this successor's precise
        // metadata replica (the cells live only on the owner, so
        // every stream is served shed and concealed).
        ArchiveGetResult rep =
            service_.getFromReplica(request.name);
        if (rep.error == ArchiveError::None) {
            // Coalesced waiters wanted full fidelity; send them
            // back to retry against the owner. Never cached.
            if (leader)
                failFlight(job.flightKey, Status::Retry);
            std::vector<GopRange> ranges = gopRanges(
                rep.frameHeaders, rep.decoded.frames.size());
            if (request.gop >= ranges.size()) {
                respondStatus(job.conn, Status::NotFound,
                              job.requestId);
                return;
            }
            GetFramesResponse response;
            response.status = Status::Degraded;
            response.streamsShed =
                static_cast<u32>(rep.streamsShed);
            response.bytesShed = rep.bytesShed;
            // Every payload byte is shed: the capped value the
            // shed-fraction model bottoms out at.
            response.shedDbEst = 30.0;
            response.width = static_cast<u16>(rep.decoded.width());
            response.height =
                static_cast<u16>(rep.decoded.height());
            response.gopCount = static_cast<u32>(ranges.size());
            response.firstFrame = ranges[request.gop].firstFrame;
            response.frameCount = ranges[request.gop].frameCount;
            response.i420 =
                packFramesI420(rep.decoded,
                               ranges[request.gop].firstFrame,
                               ranges[request.gop].frameCount);
            shedResponses_.fetch_add(1,
                                     std::memory_order_relaxed);
            VA_TELEM_COUNT("server.get.replica_served", 1);
            respondPayload(job.conn,
                           static_cast<u8>(response.status),
                           job.requestId,
                           serializeGetFramesResponse(response));
            return;
        }
    }
    if (result.error != ArchiveError::None) {
        Status status = Status::Error;
        if (result.error == ArchiveError::NotFound)
            status = Status::NotFound;
        else if (result.error == ArchiveError::KeyRequired ||
                 result.error == ArchiveError::KeyMismatch)
            status = Status::KeyRequired;
        if (leader)
            failFlight(job.flightKey, status);
        respondStatus(job.conn, status, job.requestId);
        return;
    }

    std::vector<GopRange> ranges =
        gopRanges(result.frameHeaders, result.decoded.frames.size());

    GetFramesResponse response;
    response.status = result.cells.blocksUncorrectable > 0
                          ? Status::Partial
                          : Status::Ok;
    if (response.status == Status::Partial)
        VA_TELEM_COUNT("server.partial_responses", 1);
    if (result.streamsShed > 0) {
        // Chosen loss outranks suffered loss in the status byte; the
        // block counters still carry any storage damage alongside.
        response.status = Status::Degraded;
        response.streamsShed =
            static_cast<u32>(result.streamsShed);
        response.bytesShed = result.bytesShed;
        u64 total_bytes = 0;
        for (const auto &[t, data] : result.streams.data)
            total_bytes += data.size();
        double fraction =
            total_bytes > 0 ? static_cast<double>(result.bytesShed) /
                                  static_cast<double>(total_bytes)
                            : 0.0;
        if (fraction > 0.999)
            fraction = 0.999;
        // Modeled dB cost: reconstruction error energy taken
        // proportional to the shed payload fraction.
        response.shedDbEst = -10.0 * std::log10(1.0 - fraction);
        shedResponses_.fetch_add(1, std::memory_order_relaxed);
        VA_TELEM_COUNT("server.shed.responses", 1);
        VA_TELEM_COUNT("server.shed.streams", result.streamsShed);
        VA_TELEM_COUNT("server.shed.bytes", result.bytesShed);
        VA_TELEM_HIST("server.shed.est_db_x100",
                      static_cast<u64>(response.shedDbEst * 100.0));
    }
    response.width = static_cast<u16>(result.decoded.width());
    response.height = static_cast<u16>(result.decoded.height());
    response.gopCount = static_cast<u32>(ranges.size());
    response.blocksCorrected = result.cells.blocksCorrected;
    response.blocksUncorrectable = result.cells.blocksUncorrectable;

    // One decode produced every GOP of the video: cache them all so
    // the next hot read of any GOP skips the whole read path, and
    // build the entry table the flight's waiters are served from.
    std::vector<CachedGopPtr> table;
    if (leader)
        table.resize(ranges.size());
    for (std::size_t g = 0; g < ranges.size(); ++g) {
        const bool own = g == request.gop;
        if (own || cacheable || leader) {
            DecodedGop gop;
            gop.width = response.width;
            gop.height = response.height;
            gop.firstFrame = ranges[g].firstFrame;
            gop.frameCount = ranges[g].frameCount;
            gop.gopCount = response.gopCount;
            gop.blocksCorrected = response.blocksCorrected;
            gop.blocksUncorrectable = response.blocksUncorrectable;
            gop.i420 = packFramesI420(result.decoded,
                                      ranges[g].firstFrame,
                                      ranges[g].frameCount);
            if (own) {
                response.firstFrame = gop.firstFrame;
                response.frameCount = gop.frameCount;
                response.i420 = gop.i420;
            }
            if (cacheable || leader) {
                CachedGopPtr entry = makeCachedGop(gop);
                if (cacheable)
                    cache_.put(GopKey{request.name,
                                      static_cast<u32>(g), key_id},
                               entry);
                if (leader)
                    table[g] = std::move(entry);
            }
        }
    }
    // Cache inserts happen before the flight retires: a GET arriving
    // after the flight is gone finds the cache warm, so no request
    // can fall between the two.
    if (leader)
        finishFlight(job.flightKey, table);
    if (request.gop >= ranges.size()) {
        respondStatus(job.conn, Status::NotFound, job.requestId);
        return;
    }
    // The dB-vs-latency trade, split by fidelity: degraded reads
    // finish in less wall time at a modeled quality cost. Two call
    // sites, not a ternary name: VA_TELEM_HIST caches the histogram
    // in a per-callsite static.
    if (result.streamsShed > 0)
        VA_TELEM_HIST("server.shed.latency_degraded_ms",
                      elapsedMs(job.admitted));
    else
        VA_TELEM_HIST("server.shed.latency_full_ms",
                      elapsedMs(job.admitted));
    respondPayload(job.conn, static_cast<u8>(response.status),
                   job.requestId,
                   serializeGetFramesResponse(response));
}

void
VappServer::handlePut(const ServerJob &job)
{
    VA_TELEM_LATENCY("server.op.put");
    PutRequest request;
    if (!parsePutRequest(job.payload, request) ||
        request.cipherMode > static_cast<u8>(CipherMode::CFB)) {
        respondStatus(job.conn, Status::BadRequest, job.requestId);
        return;
    }
    if (config_.cluster != nullptr && request.ringEpoch != 0 &&
        request.ringEpoch < config_.cluster->ringEpoch()) {
        // Writing under stale placement would strand the record on
        // a non-owner; reject with the fresh ring instead.
        answerWrongEpoch(job);
        return;
    }

    Video video;
    const std::size_t luma =
        static_cast<std::size_t>(request.width) * request.height;
    const std::size_t frame_bytes = luma * 3 / 2;
    video.frames.reserve(request.frameCount);
    for (u32 f = 0; f < request.frameCount; ++f) {
        Frame frame(request.width, request.height);
        const u8 *src = request.i420.data() + f * frame_bytes;
        std::memcpy(frame.y().data().data(), src, luma);
        std::memcpy(frame.u().data().data(), src + luma, luma / 4);
        std::memcpy(frame.v().data().data(),
                    src + luma + luma / 4, luma / 4);
        video.frames.push_back(std::move(frame));
    }

    PreparedVideo prepared = prepareVideo(
        video, EncoderConfig{}, EccAssignment::paperTable1());
    ArchivePutOptions options;
    if (!request.key.empty()) {
        EncryptionConfig enc;
        enc.mode = static_cast<CipherMode>(request.cipherMode);
        enc.key = request.key;
        enc.keyId = request.keyId;
        enc.encryptMinT = request.encryptMinT;
        // Same nonce derivation as the CLI: reproducible per
        // (seed, name), distinct across names under one key.
        Rng iv_rng(Rng::deriveSeed(
            request.ivSeed,
            std::hash<std::string>{}(request.name)));
        for (auto &b : enc.masterIv)
            b = static_cast<u8>(iv_rng.next());
        options.encryption = enc;
    }
    if (service_.put(request.name, prepared, options) !=
        ArchiveError::None) {
        respondStatus(job.conn, Status::Error, job.requestId);
        return;
    }
    if (config_.cluster != nullptr && request.ringEpoch != 0 &&
        request.ringEpoch < config_.cluster->ringEpoch() &&
        config_.cluster->ownerOf(request.name) !=
            config_.cluster->selfShard()) {
        // The ring moved while this PUT was in flight (the entry
        // check ran before the bump) and took ownership elsewhere.
        // Answering Ok would strand the record on a non-owner the
        // migration sweep has already passed; undo and bounce so
        // the client re-routes under the fresh ring.
        service_.remove(request.name);
        cache_.eraseVideo(request.name);
        answerWrongEpoch(job);
        return;
    }
    cache_.eraseVideo(request.name);
    if (config_.cluster != nullptr)
        config_.cluster->replicateMeta(request.name);

    PutResponse response;
    response.status = Status::Ok;
    response.payloadBytes = prepared.payloadBits() / 8;
    for (const ArchiveVideoStat &s : service_.stat())
        if (s.name == request.name)
            response.cellBytes = s.cellBytes;
    respondPayload(job.conn, static_cast<u8>(response.status),
                   job.requestId, serializePutResponse(response));
}

void
VappServer::handleStat(const ServerJob &job)
{
    VA_TELEM_LATENCY("server.op.stat");
    StatResponse response;
    response.status = Status::Ok;
    response.videos = service_.stat();
    respondPayload(job.conn, static_cast<u8>(response.status),
                   job.requestId, serializeStatResponse(response));
}

void
VappServer::handleScrub(const ServerJob &job)
{
    VA_TELEM_LATENCY("server.op.scrub");
    ScrubRequest request;
    if (!parseScrubRequest(job.payload, request)) {
        respondStatus(job.conn, Status::BadRequest, job.requestId);
        return;
    }
    ScrubOptions options;
    options.ageRawBer = request.ageRawBer;
    options.seed = request.seed;
    ScrubReport report = service_.scrub(options);
    // A scrub (with aging) may have changed any stream's cells:
    // every cached decode is stale.
    cache_.clear();

    ScrubResponse response;
    response.status = Status::Ok;
    response.videos = report.videos;
    response.streams = report.streams;
    response.blocksRead = report.cells.blocksRead;
    response.blocksRewritten = report.blocksRewritten;
    response.bitsCorrected = report.cells.bitsCorrected;
    response.blocksUncorrectable = report.cells.blocksUncorrectable;
    response.streamsMiscorrected = report.streamsMiscorrected;
    response.streamsDamaged = report.streamsDamaged;
    respondPayload(job.conn, static_cast<u8>(response.status),
                   job.requestId, serializeScrubResponse(response));
}

void
VappServer::answerHealth(const std::shared_ptr<Connection> &conn,
                         u32 request_id)
{
    HealthResponse response;
    response.status = Status::Ok;
    response.queueDepth = static_cast<u32>(queue_.size());
    response.queueCapacity = static_cast<u32>(queue_.capacity());
    response.queueHighWater =
        static_cast<u32>(queue_.highWater());
    response.queueRejected = queue_.rejectedTotal();
    response.cacheBytes = cache_.bytes();
    response.cacheEntries = cache_.entries();
    response.videos = service_.videoCount();
    response.coalescedGets = coalescedGets_.load();
    response.shedThreshold = config_.shedThreshold > 0
                                 ? static_cast<u32>(
                                       config_.shedThreshold)
                                 : 0;
    response.shedResponses = shedResponses_.load();
    respondPayload(conn, static_cast<u8>(response.status),
                   request_id, serializeHealthResponse(response));
}

} // namespace videoapp
