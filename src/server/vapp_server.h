/**
 * @file
 * The VAPP store server: a concurrent TCP front end over an
 * ArchiveService, completing the paper's storage model into a
 * serving system that can be load-tested end to end.
 *
 * Architecture (one process, loopback or LAN):
 *
 *   accept thread ─▶ per-connection reader threads
 *        │                 │  parse wire frames (total parser)
 *        │                 │  HEALTH answered inline (liveness must
 *        │                 │  survive queue saturation)
 *        │                 ▼
 *        │          RequestQueue (bounded, Serve ahead of Maintain;
 *        │                 │      full queue -> Status::Retry)
 *        │                 ▼
 *        └── worker pool: deadline check, FrameCache lookup,
 *            ArchiveService get/put/scrub/stat, response write
 *            (per-connection write mutex; responses may interleave
 *            across requests of one pipelined connection)
 *
 * Read path: a GET_FRAMES miss decodes the *whole* video through
 * ArchiveService::get (BCH read, decrypt, entropy decode, pivot
 * reassembly), packs every GOP and caches them all, then answers
 * with the requested one; a hit returns packed frames straight from
 * memory, touching none of that. Exact reads (injectRawBer == 0)
 * are the only cacheable ones — injected reads are stochastic
 * experiments and always decode fresh.
 *
 * Degradation: requests carrying a deadline that expires while
 * queued get Status::Deadline; reads whose low-importance streams
 * had uncorrectable blocks still serve their frames with
 * Status::Partial (approximate storage made visible, not an error).
 *
 * Shutdown (stop()): stop accepting, close the queue (admitted jobs
 * still drain and answer), join workers, then unblock and join the
 * connection readers — an admitted request never loses its response.
 */

#ifndef VIDEOAPP_SERVER_VAPP_SERVER_H_
#define VIDEOAPP_SERVER_VAPP_SERVER_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "archive/archive_service.h"
#include "server/frame_cache.h"
#include "server/request_queue.h"
#include "server/wire.h"

namespace videoapp {

struct VappServerConfig
{
    /** TCP port to bind on 127.0.0.1 (0 = ephemeral, see port()). */
    u16 port = 0;
    /** Worker threads draining the request queue. */
    int workers = 4;
    /** Bounded queue capacity across both priority classes. */
    std::size_t queueCapacity = 256;
    /** Decoded-GOP cache byte budget (0 disables caching). */
    std::size_t cacheBytes = 64u << 20;
};

class VappServer
{
  public:
    /** @p service must outlive the server and be open()ed. */
    VappServer(ArchiveService &service, VappServerConfig config);
    ~VappServer();

    VappServer(const VappServer &) = delete;
    VappServer &operator=(const VappServer &) = delete;

    /** Bind, listen and launch the threads; false on socket errors
     * (errno preserved). Call at most once. */
    bool start();

    /** Graceful shutdown; idempotent, also run by the destructor. */
    void stop();

    /** The bound port (valid after start(); resolves port = 0). */
    u16 port() const { return port_; }

    FrameCache &cache() { return cache_; }
    std::size_t queueDepth() const { return queue_.size(); }
    std::size_t queueHighWater() const { return queue_.highWater(); }
    u64 queueRejected() const { return queue_.rejectedTotal(); }

    /**
     * Test/bench hook: freeze the worker pool's queue drain so
     * admitted requests pile up to capacity and the overflow is
     * answered with Status::Retry deterministically. Admission,
     * HEALTH and connection handling keep running.
     */
    void setDrainPaused(bool paused);

  private:
    struct Connection;

    struct ServerJob
    {
        std::shared_ptr<Connection> conn;
        Opcode opcode = Opcode::Health;
        u32 requestId = 0;
        Bytes payload;
        std::chrono::steady_clock::time_point admitted;
    };

    void acceptLoop();
    void connectionLoop(std::shared_ptr<Connection> conn);
    void workerLoop();
    void reapFinishedConnections();

    static bool sendFrame(Connection &conn, u8 kind, u32 request_id,
                          const Bytes &payload);
    static bool sendStatus(Connection &conn, Status status,
                           u32 request_id);

    void execute(const ServerJob &job);
    void handleGetFrames(const ServerJob &job);
    void handlePut(const ServerJob &job);
    void handleStat(const ServerJob &job);
    void handleScrub(const ServerJob &job);
    void answerHealth(const std::shared_ptr<Connection> &conn,
                      u32 request_id);

    ArchiveService &service_;
    VappServerConfig config_;
    RequestQueue<ServerJob> queue_;
    FrameCache cache_;

    int listenFd_ = -1;
    u16 port_ = 0;
    std::atomic<bool> running_{false};
    bool started_ = false;
    std::thread acceptThread_;
    std::vector<std::thread> workers_;

    std::mutex connMutex_;
    std::vector<std::shared_ptr<Connection>> connections_;
    std::vector<std::thread> connThreads_;
};

} // namespace videoapp

#endif // VIDEOAPP_SERVER_VAPP_SERVER_H_
