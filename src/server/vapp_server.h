/**
 * @file
 * The VAPP store server: an event-driven TCP front end over an
 * ArchiveService, completing the paper's storage model into a
 * serving system that can be load-tested end to end.
 *
 * Architecture (one process, loopback or LAN):
 *
 *   epoll event loop (1 thread, nonblocking sockets)
 *     │  accepts, reads, incremental deframing (FrameDeframer),
 *     │  HEALTH / BadRequest / Retry / cache hits answered inline,
 *     │  all socket writes (nonblocking, partial-write continuation
 *     │  via per-connection outboxes and EPOLLOUT re-arm)
 *     ▼
 *   RequestQueue (bounded, Serve ahead of Maintain;
 *     │           full queue -> Status::Retry)
 *     ▼
 *   worker pool: batched pop, deadline check, single-flight decode,
 *     ArchiveService get/put/scrub/stat; responses are appended to
 *     the connection outbox and the loop is woken via eventfd —
 *     workers never touch a socket.
 *
 * Read path: a GET_FRAMES miss decodes the *whole* video through
 * ArchiveService::get (BCH read, decrypt, entropy decode, pivot
 * reassembly), packs every GOP and caches them all, then answers
 * with the requested one; a hit serializes straight from the
 * refcounted FrameCache entry — the pre-built payload and memoized
 * CRC hit the wire with zero copies. Exact reads (injectRawBer ==
 * 0) are the only cacheable ones — injected reads are stochastic
 * experiments and always decode fresh.
 *
 * Single flight: concurrent cold GETs for the same (video, key-id)
 * coalesce. The first becomes the decode leader; later arrivals
 * (exact, deadline-free) attach as waiters without consuming queue
 * slots and are all answered from the leader's one decode — which
 * also pre-warms the video's BCH tables once, so the block decodes
 * the whole batch shares hit the table cache's lock-free fast path.
 * Requests carrying deadlines or error injection bypass coalescing.
 *
 * Degradation: requests carrying a deadline that expires while
 * queued get Status::Deadline; reads whose low-importance streams
 * had uncorrectable blocks still serve their frames with
 * Status::Partial (approximate storage made visible, not an error).
 *
 * Shutdown (stop()): stop accepting, close the queue (admitted jobs
 * still drain and answer), join workers while the loop keeps
 * flushing their responses, then drain the outboxes (bounded) and
 * exit — an admitted request never loses its response.
 */

#ifndef VIDEOAPP_SERVER_VAPP_SERVER_H_
#define VIDEOAPP_SERVER_VAPP_SERVER_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "archive/archive_service.h"
#include "server/frame_cache.h"
#include "server/request_queue.h"
#include "server/wire.h"

namespace videoapp {

/**
 * What a VappServer needs from the cluster tier, when it runs as one
 * shard of a ring (src/cluster/ClusterNode implements this; a null
 * pointer in the config means standalone, zero cluster overhead).
 *
 * Placement methods are pure functions of the ring and safe from any
 * thread. forward()/replicateMeta()/fetchReplicaMeta() do blocking
 * peer I/O and must only run on worker threads, never the event
 * loop.
 */
class ClusterPeer
{
  public:
    virtual ~ClusterPeer() = default;

    /** This node's shard id. */
    virtual u32 selfShard() const = 0;

    /** The shard the ring places @p name on. */
    virtual u32 ownerOf(const std::string &name) const = 0;

    /**
     * Relay (op, payload) to @p shard with kWireFlagForwarded set
     * and return the peer's response verbatim (@p kind is the
     * response frame kind, @p response its payload). False on
     * transport failure.
     */
    virtual bool forward(u32 shard, Opcode op, const Bytes &payload,
                        u8 &kind, Bytes &response) = 0;

    /** Serialized ClusterInfoResponse describing the ring. */
    virtual Bytes infoPayload() const = 0;

    /** Ship @p name's precise-meta blob to its ring successors
     * (best effort; failures are counted, not fatal). */
    virtual void replicateMeta(const std::string &name) = 0;

    /** Fetch a replica blob for @p name from a successor holding
     * one. False when no replica could be retrieved. */
    virtual bool fetchReplicaMeta(const std::string &name,
                                  Bytes &meta) = 0;

    // --- live membership (rebalance tier; defaults = static ring) --

    /** Current ring epoch (requests carrying an older one are
     * answered Status::WrongEpoch with the fresh ring). */
    virtual u64
    ringEpoch() const
    {
        return 0;
    }

    /**
     * When @p name is still migrating *to* this node, the shard that
     * holds it today. A worker seeing NotFound for such a name pulls
     * the record from the source before answering (pull-through
     * cutover — GETs stay correct mid-migration).
     */
    virtual std::optional<ClusterShard>
    pendingMigrationSource(const std::string &name) const
    {
        (void)name;
        return std::nullopt;
    }

    /** Blocking CELL_PULL of @p name's record blob from @p source
     * (workers only). False on transport/status failure. */
    virtual bool
    pullRecord(const ClusterShard &source, const std::string &name,
               Bytes &record)
    {
        (void)source;
        (void)name;
        (void)record;
        return false;
    }

    /** The record for @p name arrived (pull-through or push):
     * forget its migration-in entry. */
    virtual void
    clearPendingMigration(const std::string &name)
    {
        (void)name;
    }
};

struct VappServerConfig
{
    /** TCP port to bind on 127.0.0.1 (0 = ephemeral, see port()). */
    u16 port = 0;
    /** Worker threads draining the request queue (the event loop
     * handles any number of connections on its own). */
    int workers = 4;
    /** Bounded queue capacity across both priority classes. */
    std::size_t queueCapacity = 256;
    /** Decoded-GOP cache byte budget (0 disables caching). */
    std::size_t cacheBytes = 64u << 20;
    /** Test hook: SO_SNDBUF for accepted sockets (0 = OS default).
     * A tiny buffer forces partial writes so the EPOLLOUT
     * continuation path is exercised deterministically. */
    int sndbufBytes = 0;
    /**
     * Importance-aware load shedding (0 = disabled). When > 0, a
     * GET_FRAMES admitted while the queue is under pressure (depth
     * at 3/4 capacity or more), or whose deadline is already half
     * spent by the time a worker picks it up, skips reading streams
     * whose policy degradation class is >= this value and answers
     * Status::Degraded — trading low-importance fidelity for
     * latency. Class 0 (the most important stream) is never shed,
     * and shed responses bypass both single-flight coalescing and
     * the GOP cache.
     */
    int shedThreshold = 0;
    /** Non-null: run as one shard of a cluster. Mis-targeted
     * GET_FRAMES/PUT requests are forwarded to their owner, PUTs
     * replicate precise metadata to ring successors, and GETs whose
     * precise metadata fails its CRC repair from a replica. The
     * peer must outlive the server. */
    ClusterPeer *cluster = nullptr;
};

class VappServer
{
  public:
    /** @p service must outlive the server and be open()ed. */
    VappServer(ArchiveService &service, VappServerConfig config);
    ~VappServer();

    VappServer(const VappServer &) = delete;
    VappServer &operator=(const VappServer &) = delete;

    /** Bind, listen and launch the threads; false on socket errors
     * (errno preserved). Call at most once. */
    bool start();

    /** Graceful shutdown; idempotent, also run by the destructor. */
    void stop();

    /** The bound port (valid after start(); resolves port = 0). */
    u16 port() const { return port_; }

    FrameCache &cache() { return cache_; }
    std::size_t queueDepth() const { return queue_.size(); }
    std::size_t queueHighWater() const { return queue_.highWater(); }
    u64 queueRejected() const { return queue_.rejectedTotal(); }

    /** GETs answered from another request's in-flight decode. */
    u64 coalescedGets() const { return coalescedGets_.load(); }

    /** GETs served reduced-fidelity (Status::Degraded). */
    u64 shedResponses() const { return shedResponses_.load(); }

    /**
     * Test/bench hook: freeze the worker pool's queue drain so
     * admitted requests pile up to capacity and the overflow is
     * answered with Status::Retry deterministically. Admission,
     * HEALTH and connection handling keep running.
     */
    void setDrainPaused(bool paused);

  private:
    struct Connection;
    struct OutboundFrame;

    struct ServerJob
    {
        std::shared_ptr<Connection> conn;
        Opcode opcode = Opcode::Health;
        u32 requestId = 0;
        Bytes payload;
        std::chrono::steady_clock::time_point admitted;
        /** Non-empty: this job leads the single-flight decode
         * registered under this key at admission. */
        std::string flightKey;
        /** True: relay the request to @p forwardShard and echo the
         * peer's response instead of serving locally. */
        bool forward = false;
        u32 forwardShard = 0;
        /** True: admission saw queue pressure — serve this GET at
         * reduced fidelity (shed low-importance streams). */
        bool shed = false;
    };

    struct Waiter
    {
        std::shared_ptr<Connection> conn;
        u32 requestId = 0;
        u32 gop = 0;
    };

    struct Flight
    {
        std::vector<Waiter> waiters;
    };

    // --- event loop (loop thread only unless noted) ----------------
    void eventLoop();
    void acceptAll();
    void onReadable(const std::shared_ptr<Connection> &conn);
    /** Parse buffered frames; false when the connection was lost. */
    bool processFrames(const std::shared_ptr<Connection> &conn);
    void handleFrame(const std::shared_ptr<Connection> &conn,
                     const WireFrameHeader &header, Bytes payload);
    void flushOutbox(const std::shared_ptr<Connection> &conn);
    void processWriteReady();
    void updateEpoll(const std::shared_ptr<Connection> &conn);
    void closeConnection(const std::shared_ptr<Connection> &conn);
    bool drainForExit();

    /** Any thread: queue a frame on @p conn and make sure the loop
     * flushes it (inline when called from the loop itself). */
    void enqueueResponse(const std::shared_ptr<Connection> &conn,
                         OutboundFrame frame);
    void wakeLoop();

    void respondPayload(const std::shared_ptr<Connection> &conn,
                        u8 kind, u32 request_id,
                        const Bytes &payload);
    void respondStatus(const std::shared_ptr<Connection> &conn,
                       Status status, u32 request_id);
    /** Zero-copy: header + pinned cache payload + CRC trailer. */
    void respondCached(const std::shared_ptr<Connection> &conn,
                       u32 request_id, CachedGopPtr gop);

    // --- workers ---------------------------------------------------
    void workerLoop();
    void execute(const ServerJob &job);
    void handleGetFrames(const ServerJob &job);
    void handlePut(const ServerJob &job);
    void handleStat(const ServerJob &job);
    void handleScrub(const ServerJob &job);
    void handleMetaPut(const ServerJob &job);
    void handleMetaGet(const ServerJob &job);
    void handleCellPull(const ServerJob &job);
    void handleCellPush(const ServerJob &job);
    /** The request routed by a stale ring: answer Status::WrongEpoch
     * carrying the fresh ring so the client self-heals. */
    void answerWrongEpoch(const ServerJob &job);
    /** Relay a mis-targeted request to its owner shard and echo the
     * response verbatim (workers only: blocking peer I/O). */
    void handleForward(const ServerJob &job);
    void answerHealth(const std::shared_ptr<Connection> &conn,
                      u32 request_id);

    /** Serve every waiter of @p key from the per-GOP table (out of
     * range -> NotFound) and retire the flight. */
    void finishFlight(const std::string &key,
                      const std::vector<CachedGopPtr> &table);
    /** Retire the flight answering every waiter @p status. */
    void failFlight(const std::string &key, Status status);
    /** Leader raced a cache fill: try to finish the flight (and the
     * leader's own response) entirely from cache; false when a
     * sibling GOP was evicted and a fresh decode is needed. */
    bool completeFlightFromCache(const ServerJob &job,
                                 const GetFramesRequest &request,
                                 CachedGopPtr hit);

    ArchiveService &service_;
    VappServerConfig config_;
    RequestQueue<ServerJob> queue_;
    FrameCache cache_;

    int listenFd_ = -1;
    int epollFd_ = -1;
    int wakeFd_ = -1;
    u16 port_ = 0;
    bool started_ = false;
    bool stopped_ = false;
    std::atomic<bool> stopAccept_{false};
    std::atomic<bool> draining_{false};
    std::atomic<std::thread::id> loopThreadId_{};
    std::thread loopThread_;
    std::vector<std::thread> workers_;

    /** Loop-thread only: fd -> connection. */
    std::unordered_map<int, std::shared_ptr<Connection>> conns_;

    /** Connections with responses queued by workers, awaiting a
     * loop-side flush (drained by processWriteReady). */
    std::mutex writeReadyMutex_;
    std::vector<std::shared_ptr<Connection>> writeReady_;

    /** In-flight decode registry, keyed (video name, key id). */
    std::mutex flightsMutex_;
    std::unordered_map<std::string, Flight> flights_;

    std::atomic<u64> coalescedGets_{0};
    std::atomic<u64> shedResponses_{0};
};

} // namespace videoapp

#endif // VIDEOAPP_SERVER_VAPP_SERVER_H_
