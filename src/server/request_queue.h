/**
 * @file
 * Bounded MPMC request queue with per-class priorities and explicit
 * backpressure — the admission-control stage of the VAPP server.
 *
 * Two priority classes: Serve (GET_FRAMES/STAT — interactive reads)
 * always drains ahead of Maintain (PUT/SCRUB — heavy mutations), so
 * a scrub storm cannot starve reads. Admission is all-or-nothing:
 * tryPush() never blocks; when the queue is at capacity (both
 * classes combined) it refuses the job and the caller answers the
 * client with Status::Retry — load is shed at the edge with an
 * explicit signal, never by silent drops or unbounded buffering.
 *
 * pop() blocks until a job or close() arrives; after close() the
 * remaining jobs still drain (so no admitted request loses its
 * response) and pop() returns nullopt once empty. The queue tracks
 * its depth high-water mark and per-class rejection counts for the
 * server.* telemetry namespace.
 *
 * Header-only template so tests can instantiate it with trivial job
 * types; the server uses RequestQueue<ServerJob>.
 */

#ifndef VIDEOAPP_SERVER_REQUEST_QUEUE_H_
#define VIDEOAPP_SERVER_REQUEST_QUEUE_H_

#include <array>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "common/types.h"

namespace videoapp {

/** Priority class of a queued request (lower = drained first). */
enum class QueueClass : unsigned
{
    Serve = 0,    // interactive reads: GET_FRAMES, STAT
    Maintain = 1, // mutations: PUT, SCRUB
};

inline constexpr unsigned kQueueClasses = 2;

template <typename Job> class RequestQueue
{
  public:
    explicit RequestQueue(std::size_t capacity)
        : capacity_(capacity > 0 ? capacity : 1)
    {}

    RequestQueue(const RequestQueue &) = delete;
    RequestQueue &operator=(const RequestQueue &) = delete;

    /**
     * Admit @p job under @p cls. Returns false — without blocking —
     * when the queue is full or closed; a full-queue refusal is the
     * backpressure signal and bumps the class's rejection count.
     */
    bool
    tryPush(QueueClass cls, Job job)
    {
        {
            std::lock_guard lock(mutex_);
            if (closed_)
                return false;
            if (size_ >= capacity_) {
                ++rejected_[static_cast<unsigned>(cls)];
                return false;
            }
            classes_[static_cast<unsigned>(cls)].push_back(
                std::move(job));
            ++size_;
            if (size_ > highWater_)
                highWater_ = size_;
        }
        ready_.notify_one();
        return true;
    }

    /**
     * Take the oldest job of the highest-priority non-empty class,
     * blocking while the queue is empty (or drain-paused) and open.
     * Returns nullopt only when closed and fully drained.
     */
    std::optional<Job>
    pop()
    {
        std::unique_lock lock(mutex_);
        ready_.wait(lock, [&] {
            return (size_ > 0 && !drainPaused_) || closed_;
        });
        for (auto &q : classes_) {
            if (q.empty())
                continue;
            Job job = std::move(q.front());
            q.pop_front();
            --size_;
            return job;
        }
        return std::nullopt;
    }

    /**
     * Take up to @p max jobs in one lock acquisition, priority
     * order, blocking like pop() while nothing is poppable. Workers
     * drain in batches so a burst of coalesced admissions costs one
     * wakeup instead of one per job. Empty result only when closed
     * and fully drained.
     */
    std::vector<Job>
    popBatch(std::size_t max)
    {
        std::vector<Job> batch;
        if (max == 0)
            return batch;
        std::unique_lock lock(mutex_);
        ready_.wait(lock, [&] {
            return (size_ > 0 && !drainPaused_) || closed_;
        });
        for (auto &q : classes_) {
            while (!q.empty() && batch.size() < max) {
                batch.push_back(std::move(q.front()));
                q.pop_front();
                --size_;
            }
        }
        return batch;
    }

    /** Non-blocking pop (tests and drain loops). */
    std::optional<Job>
    tryPop()
    {
        std::lock_guard lock(mutex_);
        for (auto &q : classes_) {
            if (q.empty())
                continue;
            Job job = std::move(q.front());
            q.pop_front();
            --size_;
            return job;
        }
        return std::nullopt;
    }

    /**
     * Drain gate: while paused, pop() blocks even when jobs are
     * queued (admission via tryPush continues, so the queue fills to
     * capacity and then rejects — the deterministic backpressure
     * setup used by tests and the load bench). close() overrides a
     * pause so shutdown always drains.
     */
    void
    setDrainPaused(bool paused)
    {
        {
            std::lock_guard lock(mutex_);
            drainPaused_ = paused;
        }
        ready_.notify_all();
    }

    /** Refuse new jobs and wake every blocked pop(); queued jobs
     * still drain so admitted requests keep their responses. */
    void
    close()
    {
        {
            std::lock_guard lock(mutex_);
            closed_ = true;
        }
        ready_.notify_all();
    }

    bool
    closed() const
    {
        std::lock_guard lock(mutex_);
        return closed_;
    }

    std::size_t
    size() const
    {
        std::lock_guard lock(mutex_);
        return size_;
    }

    std::size_t capacity() const { return capacity_; }

    /** Deepest the queue has ever been (backpressure telemetry). */
    std::size_t
    highWater() const
    {
        std::lock_guard lock(mutex_);
        return highWater_;
    }

    /** Full-queue refusals of @p cls since construction. */
    u64
    rejected(QueueClass cls) const
    {
        std::lock_guard lock(mutex_);
        return rejected_[static_cast<unsigned>(cls)];
    }

    u64
    rejectedTotal() const
    {
        std::lock_guard lock(mutex_);
        u64 total = 0;
        for (u64 r : rejected_)
            total += r;
        return total;
    }

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::array<std::deque<Job>, kQueueClasses> classes_;
    std::size_t size_ = 0;
    std::size_t highWater_ = 0;
    std::array<u64, kQueueClasses> rejected_{};
    bool closed_ = false;
    bool drainPaused_ = false;
};

} // namespace videoapp

#endif // VIDEOAPP_SERVER_REQUEST_QUEUE_H_
