/**
 * @file
 * Sharded LRU cache of decoded GOPs under a byte budget.
 *
 * A GET_FRAMES miss pays the full read path — cell read, BCH decode,
 * decrypt, entropy decode, reassembly — for the whole video; the hit
 * path serves the *pre-serialized* GET_FRAMES response payload of
 * the requested GOP straight from memory. Entries are refcounted
 * (`std::shared_ptr<const CachedGop>`): a hit pins the entry so the
 * event loop can write it to any number of sockets with zero copies
 * even if the entry is evicted mid-write. The payload CRC is
 * memoized at insert, so a hit costs neither a serialize nor a CRC
 * pass. Entries are keyed by (video name, GOP index, key id) so
 * different decryption keys never alias, and only *exact* reads
 * (no error injection) are cached — an injected read is a stochastic
 * experiment whose result must not be replayed.
 *
 * Sharding: the key hashes to one of kShards independent LRU lists,
 * each guarded by its own mutex with its own slice of the byte
 * budget, so concurrent server workers rarely contend. Eviction is
 * LRU within the shard; an entry bigger than a shard's whole budget
 * is simply not cached. PUT invalidates the video's entries, SCRUB
 * invalidates everything (repair rewrites cells archive-wide).
 *
 * Telemetry (server.cache.*): hits, misses, evictions, plus
 * insert/invalidate counts; bytes() and entries() back the HEALTH
 * probe.
 */

#ifndef VIDEOAPP_SERVER_FRAME_CACHE_H_
#define VIDEOAPP_SERVER_FRAME_CACHE_H_

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace videoapp {

/** Cache key: one GOP of one video decoded under one key. */
struct GopKey
{
    std::string video;
    u32 gop = 0;
    /** Key-management id (0 = unencrypted read). */
    u32 keyId = 0;

    bool
    operator==(const GopKey &o) const
    {
        return gop == o.gop && keyId == o.keyId && video == o.video;
    }
};

/** A decoded GOP as the read path produces it (builder input). */
struct DecodedGop
{
    u16 width = 0;
    u16 height = 0;
    u32 firstFrame = 0;
    u32 frameCount = 0;
    /** Total GOPs of the parent video. */
    u32 gopCount = 0;
    u64 blocksCorrected = 0;
    u64 blocksUncorrectable = 0;
    Bytes i420;
};

/**
 * An immutable cache entry, ready to hit the wire: the serialized
 * GET_FRAMES response payload (fromCache = true) plus its memoized
 * CRC. Handed out as shared_ptr<const CachedGop>, so a response in
 * flight keeps its bytes alive past eviction.
 */
struct CachedGop
{
    u16 width = 0;
    u16 height = 0;
    u32 firstFrame = 0;
    u32 frameCount = 0;
    u32 gopCount = 0;
    u64 blocksCorrected = 0;
    u64 blocksUncorrectable = 0;
    /** Some blocks were uncorrectable: serve as Status::Partial. */
    bool partial = false;
    /** Serialized GetFramesResponse payload (fromCache = true). */
    Bytes payload;
    /** crc32(payload), computed once at build time. */
    u32 payloadCrc = 0;

    /** Budget charge: payload plus a small fixed overhead. */
    std::size_t
    chargedBytes() const
    {
        return payload.size() + 160;
    }
};

using CachedGopPtr = std::shared_ptr<const CachedGop>;

/** Serialize @p gop into an immutable wire-ready cache entry. */
CachedGopPtr makeCachedGop(const DecodedGop &gop);

class FrameCache
{
  public:
    static constexpr unsigned kShards = 8;

    /** @p byte_budget is split evenly across the shards. */
    explicit FrameCache(std::size_t byte_budget);

    FrameCache(const FrameCache &) = delete;
    FrameCache &operator=(const FrameCache &) = delete;

    /** Hit: a pin on the cached entry (refreshed to MRU); nullptr on
     * miss. The entry stays valid after eviction until released. */
    CachedGopPtr get(const GopKey &key);

    /** Insert (or refresh) @p gop, evicting LRU entries as needed.
     * Oversized entries (beyond one shard's budget) are skipped. */
    void put(const GopKey &key, CachedGopPtr gop);

    /** Convenience: serialize and insert a freshly decoded GOP. */
    void put(const GopKey &key, const DecodedGop &gop);

    /** Drop every GOP of @p video (all key ids). */
    void eraseVideo(const std::string &video);

    /** Drop everything (scrub invalidation). */
    void clear();

    std::size_t bytes() const { return bytes_.load(); }
    std::size_t entries() const { return entries_.load(); }
    u64 hits() const { return hits_.load(); }
    u64 misses() const { return misses_.load(); }
    u64 evictions() const { return evictions_.load(); }

  private:
    struct Entry
    {
        GopKey key;
        CachedGopPtr gop;
    };

    struct GopKeyHash
    {
        std::size_t operator()(const GopKey &k) const;
    };

    struct Shard
    {
        std::mutex mutex;
        /** Front = most recently used. */
        std::list<Entry> lru;
        std::unordered_map<GopKey, std::list<Entry>::iterator,
                           GopKeyHash>
            index;
        std::size_t bytes = 0;
    };

    Shard &shardFor(const GopKey &key);

    const std::size_t shardBudget_;
    std::vector<Shard> shards_;
    std::atomic<std::size_t> bytes_{0};
    std::atomic<std::size_t> entries_{0};
    std::atomic<u64> hits_{0};
    std::atomic<u64> misses_{0};
    std::atomic<u64> evictions_{0};
};

} // namespace videoapp

#endif // VIDEOAPP_SERVER_FRAME_CACHE_H_
