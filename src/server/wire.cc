#include "server/wire.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/crc32.h"

namespace videoapp {

const char *
opcodeName(Opcode op)
{
    switch (op) {
    case Opcode::Health: return "HEALTH";
    case Opcode::GetFrames: return "GET_FRAMES";
    case Opcode::Put: return "PUT";
    case Opcode::Stat: return "STAT";
    case Opcode::Scrub: return "SCRUB";
    case Opcode::ClusterInfo: return "CLUSTER_INFO";
    case Opcode::MetaPut: return "META_PUT";
    case Opcode::MetaGet: return "META_GET";
    case Opcode::CellPull: return "CELL_PULL";
    case Opcode::CellPush: return "CELL_PUSH";
    }
    return "unknown opcode";
}

const char *
statusName(Status status)
{
    switch (status) {
    case Status::Ok: return "OK";
    case Status::Partial: return "PARTIAL";
    case Status::NotFound: return "NOT_FOUND";
    case Status::KeyRequired: return "KEY_REQUIRED";
    case Status::Retry: return "RETRY";
    case Status::Deadline: return "DEADLINE";
    case Status::BadRequest: return "BAD_REQUEST";
    case Status::Error: return "ERROR";
    case Status::Degraded: return "DEGRADED";
    case Status::WrongEpoch: return "WRONG_EPOCH";
    }
    return "unknown status";
}

const char *
wireErrorName(WireError error)
{
    switch (error) {
    case WireError::None: return "none";
    case WireError::ShortRead: return "short read";
    case WireError::BadMagic: return "bad magic";
    case WireError::BadVersion: return "unsupported version";
    case WireError::Oversized: return "oversized payload";
    case WireError::BadCrc: return "CRC mismatch";
    case WireError::BadKind: return "unknown opcode/status";
    case WireError::Malformed: return "malformed payload";
    case WireError::ConnectionClosed: return "connection closed";
    }
    return "unknown wire error";
}

namespace {

void
putBe16(Bytes &out, u16 v)
{
    out.push_back(static_cast<u8>(v >> 8));
    out.push_back(static_cast<u8>(v));
}

void
putBe32(Bytes &out, u32 v)
{
    out.push_back(static_cast<u8>(v >> 24));
    out.push_back(static_cast<u8>(v >> 16));
    out.push_back(static_cast<u8>(v >> 8));
    out.push_back(static_cast<u8>(v));
}

u16
getBe16(const u8 *p)
{
    return static_cast<u16>(static_cast<u16>(p[0]) << 8 | p[1]);
}

u32
getBe32(const u8 *p)
{
    return static_cast<u32>(p[0]) << 24 |
           static_cast<u32>(p[1]) << 16 |
           static_cast<u32>(p[2]) << 8 | static_cast<u32>(p[3]);
}

} // namespace

Bytes
encodeFrameHeader(u8 kind, u32 requestId, u32 payloadLength,
                  u8 flags)
{
    Bytes out;
    out.reserve(kWireHeaderBytes);
    putBe32(out, kWireMagic);
    putBe16(out, kWireVersion);
    out.push_back(kind);
    out.push_back(flags);
    putBe32(out, requestId);
    putBe32(out, payloadLength);
    putBe32(out, crc32(out.data(), 16));
    return out;
}

Bytes
encodeBe32(u32 v)
{
    Bytes out;
    putBe32(out, v);
    return out;
}

Bytes
encodeFrame(u8 kind, u32 requestId, const Bytes &payload, u8 flags)
{
    Bytes out = encodeFrameHeader(
        kind, requestId, static_cast<u32>(payload.size()), flags);
    out.reserve(kWireHeaderBytes + payload.size() + 4);
    out.insert(out.end(), payload.begin(), payload.end());
    putBe32(out, crc32(payload));
    return out;
}

WireError
parseFrameHeader(const u8 *data, std::size_t size,
                 WireFrameHeader &out)
{
    if (size < kWireHeaderBytes)
        return WireError::ShortRead;
    if (getBe32(data) != kWireMagic)
        return WireError::BadMagic;
    if (getBe16(data + 4) > kWireVersion)
        return WireError::BadVersion;
    if (getBe32(data + 16) != crc32(data, 16))
        return WireError::BadCrc;
    out.kind = data[6];
    out.flags = data[7];
    out.requestId = getBe32(data + 8);
    out.payloadLength = getBe32(data + 12);
    if (out.payloadLength > kWireMaxPayload)
        return WireError::Oversized;
    return WireError::None;
}

WireError
verifyPayload(const Bytes &payload, u32 payload_crc)
{
    return crc32(payload) == payload_crc ? WireError::None
                                         : WireError::BadCrc;
}

void
FrameDeframer::feed(const u8 *data, std::size_t size)
{
    // Compact consumed bytes before growing: a long-lived pipelined
    // connection must not accumulate its whole history.
    if (pos_ > 0) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() +
                          static_cast<std::ptrdiff_t>(pos_));
        pos_ = 0;
    }
    buffer_.insert(buffer_.end(), data, data + size);
}

FrameDeframer::Result
FrameDeframer::next(Decoded &out)
{
    if (fatal_)
        return Result::Error;
    const std::size_t avail = buffer_.size() - pos_;
    if (avail < kWireHeaderBytes)
        return Result::NeedMore;
    WireError err = parseFrameHeader(buffer_.data() + pos_,
                                     kWireHeaderBytes, out.header);
    if (err != WireError::None) {
        // Header damage: the stream cannot be resynchronized.
        error_ = err;
        fatal_ = true;
        return Result::Error;
    }
    const std::size_t total =
        kWireHeaderBytes + out.header.payloadLength + 4;
    if (avail < total)
        return Result::NeedMore;
    const u8 *body = buffer_.data() + pos_ + kWireHeaderBytes;
    out.payload.assign(body, body + out.header.payloadLength);
    u32 crc = getBe32(body + out.header.payloadLength);
    pos_ += total; // consumed either way: framing held
    if (verifyPayload(out.payload, crc) != WireError::None) {
        // Recoverable: out.header.requestId is valid for the
        // BadRequest echo and the next frame starts cleanly.
        error_ = WireError::BadCrc;
        return Result::Error;
    }
    error_ = WireError::None;
    return Result::Frame;
}

// --- payload primitives ------------------------------------------------

void
WireWriter::putU16(u16 v)
{
    putBe16(out_, v);
}

void
WireWriter::putU32(u32 v)
{
    putBe32(out_, v);
}

void
WireWriter::putU64(u64 v)
{
    putBe32(out_, static_cast<u32>(v >> 32));
    putBe32(out_, static_cast<u32>(v));
}

void
WireWriter::putDouble(double v)
{
    putU64(std::bit_cast<u64>(v));
}

void
WireWriter::putBytes(const Bytes &bytes)
{
    putU32(static_cast<u32>(bytes.size()));
    out_.insert(out_.end(), bytes.begin(), bytes.end());
}

void
WireWriter::putString(const std::string &s)
{
    putU32(static_cast<u32>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
}

bool
WireReader::getU8(u8 &v)
{
    if (data_.size() - pos_ < 1)
        return false;
    v = data_[pos_++];
    return true;
}

bool
WireReader::getU16(u16 &v)
{
    if (data_.size() - pos_ < 2)
        return false;
    v = getBe16(data_.data() + pos_);
    pos_ += 2;
    return true;
}

bool
WireReader::getU32(u32 &v)
{
    if (data_.size() - pos_ < 4)
        return false;
    v = getBe32(data_.data() + pos_);
    pos_ += 4;
    return true;
}

bool
WireReader::getU64(u64 &v)
{
    u32 hi = 0;
    u32 lo = 0;
    if (!getU32(hi) || !getU32(lo))
        return false;
    v = static_cast<u64>(hi) << 32 | lo;
    return true;
}

bool
WireReader::getDouble(double &v)
{
    u64 bits = 0;
    if (!getU64(bits))
        return false;
    v = std::bit_cast<double>(bits);
    return true;
}

bool
WireReader::getBytes(Bytes &bytes)
{
    u32 n = 0;
    if (!getU32(n) || data_.size() - pos_ < n)
        return false;
    bytes.assign(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                 data_.begin() +
                     static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return true;
}

bool
WireReader::getString(std::string &s)
{
    u32 n = 0;
    if (!getU32(n) || data_.size() - pos_ < n)
        return false;
    s.assign(reinterpret_cast<const char *>(data_.data()) + pos_, n);
    pos_ += n;
    return true;
}

// --- requests ----------------------------------------------------------

Bytes
serializeGetFramesRequest(const GetFramesRequest &request)
{
    WireWriter w;
    w.putString(request.name);
    w.putU32(request.gop);
    w.putDouble(request.injectRawBer);
    w.putU64(request.seed);
    w.putU8(request.conceal ? 1 : 0);
    w.putBytes(request.key);
    w.putU32(request.deadlineMs);
    // Epoch/replica tail only when set: default-valued requests stay
    // byte-identical to the pre-resize wire shape, so old captures
    // and mixed-version peers keep parsing.
    if (request.ringEpoch != 0 || request.allowReplica) {
        w.putU64(request.ringEpoch);
        w.putU8(request.allowReplica ? 1 : 0);
    }
    return w.take();
}

bool
parseGetFramesRequest(const Bytes &payload, GetFramesRequest &out)
{
    WireReader r(payload);
    u8 conceal = 0;
    if (!r.getString(out.name) || !r.getU32(out.gop) ||
        !r.getDouble(out.injectRawBer) || !r.getU64(out.seed) ||
        !r.getU8(conceal) || !r.getBytes(out.key) ||
        !r.getU32(out.deadlineMs))
        return false;
    out.conceal = conceal != 0;
    out.ringEpoch = 0;
    out.allowReplica = false;
    if (!r.exhausted()) {
        u8 allow_replica = 0;
        if (!r.getU64(out.ringEpoch) || !r.getU8(allow_replica) ||
            !r.exhausted())
            return false;
        out.allowReplica = allow_replica != 0;
    }
    // NaN / negative rates would poison the injection path.
    return out.injectRawBer >= 0.0 && out.injectRawBer <= 1.0;
}

Bytes
serializePutRequest(const PutRequest &request)
{
    WireWriter w;
    w.putString(request.name);
    w.putU16(request.width);
    w.putU16(request.height);
    w.putU32(request.frameCount);
    w.putBytes(request.i420);
    w.putBytes(request.key);
    w.putU8(request.cipherMode);
    w.putU32(request.keyId);
    w.putU64(request.ivSeed);
    w.putU8(request.encryptMinT);
    if (request.ringEpoch != 0)
        w.putU64(request.ringEpoch);
    return w.take();
}

bool
parsePutRequest(const Bytes &payload, PutRequest &out)
{
    WireReader r(payload);
    if (!r.getString(out.name) || !r.getU16(out.width) ||
        !r.getU16(out.height) || !r.getU32(out.frameCount) ||
        !r.getBytes(out.i420) || !r.getBytes(out.key) ||
        !r.getU8(out.cipherMode) || !r.getU32(out.keyId) ||
        !r.getU64(out.ivSeed) || !r.getU8(out.encryptMinT))
        return false;
    out.ringEpoch = 0;
    if (!r.exhausted() &&
        (!r.getU64(out.ringEpoch) || !r.exhausted()))
        return false;
    if (out.name.empty() || out.width == 0 || out.height == 0 ||
        out.width % 16 != 0 || out.height % 16 != 0 ||
        out.frameCount == 0)
        return false;
    u64 frame_bytes = static_cast<u64>(out.width) * out.height * 3 / 2;
    return out.i420.size() == frame_bytes * out.frameCount;
}

Bytes
serializeScrubRequest(const ScrubRequest &request)
{
    WireWriter w;
    w.putDouble(request.ageRawBer);
    w.putU64(request.seed);
    return w.take();
}

bool
parseScrubRequest(const Bytes &payload, ScrubRequest &out)
{
    WireReader r(payload);
    if (!r.getDouble(out.ageRawBer) || !r.getU64(out.seed) ||
        !r.exhausted())
        return false;
    return out.ageRawBer >= 0.0 && out.ageRawBer <= 1.0;
}

// --- responses ---------------------------------------------------------

Bytes
serializeGetFramesResponse(const GetFramesResponse &response)
{
    WireWriter w;
    w.putU8(static_cast<u8>(response.status));
    w.putU16(response.width);
    w.putU16(response.height);
    w.putU32(response.firstFrame);
    w.putU32(response.frameCount);
    w.putU32(response.gopCount);
    w.putU8(response.fromCache ? 1 : 0);
    w.putU64(response.blocksCorrected);
    w.putU64(response.blocksUncorrectable);
    w.putU32(response.streamsShed);
    w.putU64(response.bytesShed);
    w.putDouble(response.shedDbEst);
    w.putBytes(response.i420);
    return w.take();
}

bool
parseGetFramesResponse(const Bytes &payload, GetFramesResponse &out)
{
    WireReader r(payload);
    u8 status = 0;
    if (!r.getU8(status) || status > static_cast<u8>(Status::WrongEpoch))
        return false;
    out.status = static_cast<Status>(status);
    if (out.status != Status::Ok && out.status != Status::Partial &&
        out.status != Status::Degraded)
        return true; // bare-status error response
    u8 from_cache = 0;
    if (!r.getU16(out.width) || !r.getU16(out.height) ||
        !r.getU32(out.firstFrame) || !r.getU32(out.frameCount) ||
        !r.getU32(out.gopCount) || !r.getU8(from_cache) ||
        !r.getU64(out.blocksCorrected) ||
        !r.getU64(out.blocksUncorrectable) ||
        !r.getU32(out.streamsShed) || !r.getU64(out.bytesShed) ||
        !r.getDouble(out.shedDbEst) || !r.getBytes(out.i420) ||
        !r.exhausted())
        return false;
    out.fromCache = from_cache != 0;
    return true;
}

Bytes
serializePutResponse(const PutResponse &response)
{
    WireWriter w;
    w.putU8(static_cast<u8>(response.status));
    w.putU64(response.payloadBytes);
    w.putU64(response.cellBytes);
    return w.take();
}

bool
parsePutResponse(const Bytes &payload, PutResponse &out)
{
    WireReader r(payload);
    u8 status = 0;
    if (!r.getU8(status) || status > static_cast<u8>(Status::WrongEpoch))
        return false;
    out.status = static_cast<Status>(status);
    if (out.status != Status::Ok)
        return true;
    return r.getU64(out.payloadBytes) && r.getU64(out.cellBytes) &&
           r.exhausted();
}

Bytes
serializeStatResponse(const StatResponse &response)
{
    WireWriter w;
    w.putU8(static_cast<u8>(response.status));
    w.putU32(static_cast<u32>(response.videos.size()));
    for (const ArchiveVideoStat &v : response.videos) {
        w.putString(v.name);
        w.putU16(static_cast<u16>(v.width));
        w.putU16(static_cast<u16>(v.height));
        w.putU32(static_cast<u32>(v.frames));
        w.putU32(static_cast<u32>(v.streamCount));
        w.putU64(v.payloadBytes);
        w.putU64(v.cellBytes);
        w.putU8(v.encrypted ? 1 : 0);
    }
    return w.take();
}

bool
parseStatResponse(const Bytes &payload, StatResponse &out)
{
    WireReader r(payload);
    u8 status = 0;
    if (!r.getU8(status) || status > static_cast<u8>(Status::WrongEpoch))
        return false;
    out.status = static_cast<Status>(status);
    if (out.status != Status::Ok)
        return true;
    u32 count = 0;
    if (!r.getU32(count))
        return false;
    out.videos.clear();
    for (u32 i = 0; i < count; ++i) {
        ArchiveVideoStat v;
        u16 width = 0;
        u16 height = 0;
        u32 frames = 0;
        u32 streams = 0;
        u8 encrypted = 0;
        if (!r.getString(v.name) || !r.getU16(width) ||
            !r.getU16(height) || !r.getU32(frames) ||
            !r.getU32(streams) || !r.getU64(v.payloadBytes) ||
            !r.getU64(v.cellBytes) || !r.getU8(encrypted))
            return false;
        v.width = width;
        v.height = height;
        v.frames = frames;
        v.streamCount = streams;
        v.encrypted = encrypted != 0;
        out.videos.push_back(std::move(v));
    }
    return r.exhausted();
}

Bytes
serializeScrubResponse(const ScrubResponse &response)
{
    WireWriter w;
    w.putU8(static_cast<u8>(response.status));
    w.putU64(response.videos);
    w.putU64(response.streams);
    w.putU64(response.blocksRead);
    w.putU64(response.blocksRewritten);
    w.putU64(response.bitsCorrected);
    w.putU64(response.blocksUncorrectable);
    w.putU64(response.streamsMiscorrected);
    w.putU64(response.streamsDamaged);
    return w.take();
}

bool
parseScrubResponse(const Bytes &payload, ScrubResponse &out)
{
    WireReader r(payload);
    u8 status = 0;
    if (!r.getU8(status) || status > static_cast<u8>(Status::WrongEpoch))
        return false;
    out.status = static_cast<Status>(status);
    if (out.status != Status::Ok)
        return true;
    return r.getU64(out.videos) && r.getU64(out.streams) &&
           r.getU64(out.blocksRead) &&
           r.getU64(out.blocksRewritten) &&
           r.getU64(out.bitsCorrected) &&
           r.getU64(out.blocksUncorrectable) &&
           r.getU64(out.streamsMiscorrected) &&
           r.getU64(out.streamsDamaged) && r.exhausted();
}

Bytes
serializeHealthResponse(const HealthResponse &response)
{
    WireWriter w;
    w.putU8(static_cast<u8>(response.status));
    w.putU32(response.queueDepth);
    w.putU32(response.queueCapacity);
    w.putU32(response.queueHighWater);
    w.putU64(response.queueRejected);
    w.putU64(response.cacheBytes);
    w.putU64(response.cacheEntries);
    w.putU64(response.videos);
    w.putU64(response.coalescedGets);
    w.putU32(response.shedThreshold);
    w.putU64(response.shedResponses);
    return w.take();
}

bool
parseHealthResponse(const Bytes &payload, HealthResponse &out)
{
    WireReader r(payload);
    u8 status = 0;
    if (!r.getU8(status) || status > static_cast<u8>(Status::WrongEpoch))
        return false;
    out.status = static_cast<Status>(status);
    if (out.status != Status::Ok)
        return true;
    return r.getU32(out.queueDepth) && r.getU32(out.queueCapacity) &&
           r.getU32(out.queueHighWater) &&
           r.getU64(out.queueRejected) && r.getU64(out.cacheBytes) &&
           r.getU64(out.cacheEntries) && r.getU64(out.videos) &&
           r.getU64(out.coalescedGets) &&
           r.getU32(out.shedThreshold) &&
           r.getU64(out.shedResponses) && r.exhausted();
}

Bytes
serializeStatusOnly(Status status)
{
    WireWriter w;
    w.putU8(static_cast<u8>(status));
    return w.take();
}

std::optional<Status>
peekStatus(const Bytes &payload)
{
    if (payload.empty() ||
        payload[0] > static_cast<u8>(Status::WrongEpoch))
        return std::nullopt;
    return static_cast<Status>(payload[0]);
}

// --- cluster messages --------------------------------------------------

Bytes
serializeClusterInfoResponse(const ClusterInfoResponse &r)
{
    WireWriter w;
    w.putU8(static_cast<u8>(r.status));
    w.putU64(r.epoch);
    w.putU32(r.vnodes);
    w.putU32(r.replicas);
    w.putU32(r.selfId);
    w.putU32(static_cast<u32>(r.shards.size()));
    for (const ClusterShard &s : r.shards) {
        w.putU32(s.id);
        w.putString(s.host);
        w.putU16(s.port);
    }
    return w.take();
}

bool
parseClusterInfoResponse(const Bytes &payload,
                         ClusterInfoResponse &out)
{
    WireReader r(payload);
    u8 status = 0;
    if (!r.getU8(status) || status > static_cast<u8>(Status::WrongEpoch))
        return false;
    out.status = static_cast<Status>(status);
    // WrongEpoch responses carry the full ring body too — that is
    // the entire point: the rejected client heals from the reply.
    if (out.status != Status::Ok && out.status != Status::WrongEpoch)
        return true; // bare-status error response
    u32 count = 0;
    if (!r.getU64(out.epoch) || !r.getU32(out.vnodes) ||
        !r.getU32(out.replicas) || !r.getU32(out.selfId) ||
        !r.getU32(count))
        return false;
    out.shards.clear();
    for (u32 i = 0; i < count; ++i) {
        ClusterShard s;
        if (!r.getU32(s.id) || !r.getString(s.host) ||
            !r.getU16(s.port))
            return false;
        out.shards.push_back(std::move(s));
    }
    return r.exhausted() && out.vnodes > 0 && !out.shards.empty();
}

Bytes
serializeMetaPutRequest(const MetaPutRequest &request)
{
    WireWriter w;
    w.putString(request.name);
    w.putBytes(request.meta);
    return w.take();
}

bool
parseMetaPutRequest(const Bytes &payload, MetaPutRequest &out)
{
    WireReader r(payload);
    if (!r.getString(out.name) || !r.getBytes(out.meta) ||
        !r.exhausted())
        return false;
    return !out.name.empty() && !out.meta.empty();
}

Bytes
serializeMetaGetRequest(const MetaGetRequest &request)
{
    WireWriter w;
    w.putString(request.name);
    return w.take();
}

bool
parseMetaGetRequest(const Bytes &payload, MetaGetRequest &out)
{
    WireReader r(payload);
    return r.getString(out.name) && r.exhausted() &&
           !out.name.empty();
}

Bytes
serializeMetaGetResponse(const MetaGetResponse &response)
{
    WireWriter w;
    w.putU8(static_cast<u8>(response.status));
    if (response.status == Status::Ok)
        w.putBytes(response.meta);
    return w.take();
}

bool
parseMetaGetResponse(const Bytes &payload, MetaGetResponse &out)
{
    WireReader r(payload);
    u8 status = 0;
    if (!r.getU8(status) || status > static_cast<u8>(Status::WrongEpoch))
        return false;
    out.status = static_cast<Status>(status);
    if (out.status != Status::Ok)
        return true;
    return r.getBytes(out.meta) && r.exhausted();
}

Bytes
serializeCellPullRequest(const CellPullRequest &request)
{
    WireWriter w;
    w.putString(request.name);
    return w.take();
}

bool
parseCellPullRequest(const Bytes &payload, CellPullRequest &out)
{
    WireReader r(payload);
    return r.getString(out.name) && r.exhausted() &&
           !out.name.empty();
}

Bytes
serializeCellPullResponse(const CellPullResponse &response)
{
    WireWriter w;
    w.putU8(static_cast<u8>(response.status));
    if (response.status == Status::Ok)
        w.putBytes(response.record);
    return w.take();
}

bool
parseCellPullResponse(const Bytes &payload, CellPullResponse &out)
{
    WireReader r(payload);
    u8 status = 0;
    if (!r.getU8(status) || status > static_cast<u8>(Status::WrongEpoch))
        return false;
    out.status = static_cast<Status>(status);
    if (out.status != Status::Ok)
        return true;
    return r.getBytes(out.record) && r.exhausted() &&
           !out.record.empty();
}

Bytes
serializeCellPushRequest(const CellPushRequest &request)
{
    WireWriter w;
    w.putString(request.name);
    w.putBytes(request.record);
    w.putU8(request.overwrite ? 1 : 0);
    return w.take();
}

bool
parseCellPushRequest(const Bytes &payload, CellPushRequest &out)
{
    WireReader r(payload);
    u8 overwrite = 0;
    if (!r.getString(out.name) || !r.getBytes(out.record) ||
        !r.getU8(overwrite) || !r.exhausted())
        return false;
    out.overwrite = overwrite != 0;
    return !out.name.empty() && !out.record.empty();
}

Bytes
serializeCellPushResponse(const CellPushResponse &response)
{
    WireWriter w;
    w.putU8(static_cast<u8>(response.status));
    if (response.status == Status::Ok)
        w.putU8(response.adopted ? 1 : 0);
    return w.take();
}

bool
parseCellPushResponse(const Bytes &payload, CellPushResponse &out)
{
    WireReader r(payload);
    u8 status = 0;
    if (!r.getU8(status) || status > static_cast<u8>(Status::WrongEpoch))
        return false;
    out.status = static_cast<Status>(status);
    if (out.status != Status::Ok)
        return true;
    u8 adopted = 0;
    if (!r.getU8(adopted) || !r.exhausted())
        return false;
    out.adopted = adopted != 0;
    return true;
}

std::optional<std::string>
peekRequestName(const Bytes &payload)
{
    WireReader r(payload);
    std::string name;
    if (!r.getString(name) || name.empty())
        return std::nullopt;
    return name;
}

// --- frame packing & GOP ranges ----------------------------------------

std::vector<GopRange>
gopRanges(const std::vector<FrameHeader> &headers,
          std::size_t frame_count)
{
    std::vector<u32> starts;
    for (const FrameHeader &h : headers)
        if (h.type == FrameType::I && h.displayIdx < frame_count)
            starts.push_back(h.displayIdx);
    std::sort(starts.begin(), starts.end());
    // A leading non-I prefix (or no I frames at all) folds into the
    // first GOP so every frame belongs to exactly one range.
    if (starts.empty())
        starts.push_back(0);
    else
        starts.front() = 0;
    std::vector<GopRange> ranges;
    for (std::size_t g = 0; g < starts.size(); ++g) {
        u32 first = starts[g];
        u32 end = g + 1 < starts.size()
                      ? starts[g + 1]
                      : static_cast<u32>(frame_count);
        if (end > first)
            ranges.push_back({first, end - first});
    }
    if (ranges.empty() && frame_count > 0)
        ranges.push_back({0, static_cast<u32>(frame_count)});
    return ranges;
}

Bytes
packFramesI420(const Video &video, std::size_t first,
               std::size_t count)
{
    Bytes out;
    std::size_t end = std::min(first + count, video.frames.size());
    for (std::size_t i = first; i < end; ++i) {
        const Frame &f = video.frames[i];
        out.insert(out.end(), f.y().data().begin(),
                   f.y().data().end());
        out.insert(out.end(), f.u().data().begin(),
                   f.u().data().end());
        out.insert(out.end(), f.v().data().begin(),
                   f.v().data().end());
    }
    return out;
}

} // namespace videoapp
