#include "rebalance/rebalance.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "common/crc32.h"
#include "common/telemetry.h"
#include "core/pipeline.h"

namespace videoapp {

namespace {

/** Allocation cap when parsing replica meta blobs pulled off peers
 * (mirrors the archive's replication bound). */
constexpr u64 kRebuildPayloadBound = u64{1} << 31;

/** One request/response exchange with @p addr on a fresh
 * connection. Migration traffic is bulk and infrequent; ephemeral
 * connections keep the engine off the nodes' cached-peer mutexes
 * and work against holders the ring no longer lists. */
bool
wireCall(const ClusterShard &addr, Opcode op, const Bytes &payload,
         u8 &kind, Bytes &response)
{
    VappClient client;
    if (!client.connect(addr.host, addr.port))
        return false;
    if (!client.send(op, payload))
        return false;
    auto raw = client.receive();
    if (!raw)
        return false;
    kind = raw->kind;
    response = std::move(raw->payload);
    return true;
}

std::vector<u32>
idsOf(const std::vector<ManagedShard> &shards)
{
    std::vector<u32> ids;
    ids.reserve(shards.size());
    for (const ManagedShard &s : shards)
        ids.push_back(s.address.id);
    return ids;
}

const ManagedShard *
findShard(const std::vector<ManagedShard> &shards, u32 id)
{
    for (const ManagedShard &s : shards)
        if (s.address.id == id)
            return &s;
    return nullptr;
}

} // namespace

// --- MigrationEngine ---------------------------------------------------

MigrationEngine::MigrationEngine(RebalanceConfig config)
    : config_(config)
{}

MigrationEngine::Outcome
MigrationEngine::executeMove(const PlannedMove &move)
{
    for (int attempt = 0; attempt <= config_.maxRetries;
         ++attempt) {
        if (attempt > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10 << attempt));
        CellPullRequest pull;
        pull.name = move.name;
        u8 kind = 0;
        Bytes response;
        if (!wireCall(move.source, Opcode::CellPull,
                      serializeCellPullRequest(pull), kind,
                      response))
            continue;
        if (kind == static_cast<u8>(Status::NotFound)) {
            // The holder no longer has it: a pull-through GET at the
            // destination already moved the record. Settled.
            return Outcome::Skipped;
        }
        CellPullResponse pulled;
        if (kind != static_cast<u8>(Status::Ok) ||
            !parseCellPullResponse(response, pulled) ||
            pulled.record.empty())
            continue;

        CellPushRequest push;
        push.name = move.name;
        push.record = std::move(pulled.record);
        u8 push_kind = 0;
        Bytes push_response;
        if (!wireCall(move.dest, Opcode::CellPush,
                      serializeCellPushRequest(push), push_kind,
                      push_response))
            continue;
        CellPushResponse adopted;
        if (push_kind != static_cast<u8>(Status::Ok) ||
            !parseCellPushResponse(push_response, adopted))
            continue;
        return adopted.adopted ? Outcome::Moved : Outcome::Skipped;
    }
    return Outcome::Failed;
}

void
MigrationEngine::run(const std::vector<PlannedMove> &moves,
                     MigrationReport &report)
{
    if (moves.empty())
        return;
    std::vector<Outcome> outcomes(moves.size(), Outcome::Failed);
    std::atomic<std::size_t> next{0};
    const std::size_t workers = std::min(
        config_.concurrency > 0 ? config_.concurrency : 1,
        moves.size());
    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= moves.size())
                return;
            outcomes[i] = executeMove(moves[i]);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();

    // Cutover epilogue: only now that every move settled are source
    // copies dropped — a pull-through racing the engine could still
    // have needed them — and any leftover pull-through entries for
    // settled names retired.
    for (std::size_t i = 0; i < moves.size(); ++i) {
        switch (outcomes[i]) {
        case Outcome::Moved:
            report.movedRecords++;
            break;
        case Outcome::Skipped:
            report.skippedRecords++;
            break;
        case Outcome::Failed:
            report.failedRecords++;
            VA_TELEM_COUNT("rebalance.move_failures", 1);
            continue;
        }
        if (moves[i].destNode != nullptr)
            moves[i].destNode->clearPendingMigration(moves[i].name);
        if (moves[i].sourceNode != nullptr &&
            moves[i].sourceNode->service().remove(moves[i].name) ==
                ArchiveError::None)
            report.erasedAtSource++;
        VA_TELEM_COUNT("rebalance.moves", 1);
    }
}

// --- MembershipManager -------------------------------------------------

MembershipManager::MembershipManager(
    std::vector<ManagedShard> shards, u64 epoch,
    RebalanceConfig config)
    : config_(config), shards_(std::move(shards)), epoch_(epoch)
{}

std::vector<ClusterShard>
MembershipManager::topology() const
{
    std::vector<ClusterShard> addresses;
    addresses.reserve(shards_.size());
    for (const ManagedShard &s : shards_)
        addresses.push_back(s.address);
    return addresses;
}

void
MembershipManager::installTopology(
    const std::vector<ManagedShard> &members,
    const std::vector<ManagedShard> &extra, u64 epoch)
{
    std::vector<ClusterShard> addresses;
    addresses.reserve(members.size());
    for (const ManagedShard &s : members)
        addresses.push_back(s.address);
    for (const ManagedShard &s : members)
        s.node->setTopology(addresses, epoch);
    // Departing nodes learn the ring they are no longer part of:
    // they keep answering (and forwarding) correctly for stale
    // routers until the caller retires them.
    for (const ManagedShard &s : extra)
        s.node->setTopology(addresses, epoch);
}

MigrationReport
MembershipManager::transition(
    std::vector<ManagedShard> next,
    const std::vector<ManagedShard> &departing)
{
    MigrationReport report;
    report.fromEpoch = epoch_;
    report.toEpoch = epoch_ + 1;

    const HashRing old_ring(idsOf(shards_), config_.vnodes);
    const HashRing new_ring(idsOf(next), config_.vnodes);

    // Plan from the holders' own directories: every record not owned
    // by its current holder under the new ring must move. The ring
    // diff over the same survey is the theoretical minimum the
    // acceptance check compares against.
    std::vector<std::string> survey;
    std::vector<PlannedMove> moves;
    for (const ManagedShard &holder : shards_) {
        for (std::string &name :
             holder.node->service().videoNames()) {
            const u32 new_owner = new_ring.ownerOf(name);
            if (new_owner != holder.address.id) {
                const ManagedShard *dest =
                    findShard(next, new_owner);
                if (dest != nullptr)
                    moves.push_back({name, holder.address,
                                     dest->address, holder.node,
                                     dest->node});
            }
            survey.push_back(std::move(name));
        }
    }
    report.predictedMoves =
        ringDiff(old_ring, new_ring, survey).size();
    report.plannedMoves = moves.size();

    // Arm pull-through before any node runs the new ring: from the
    // instant the topology lands, a GET reaching the new owner ahead
    // of its record is served by pulling from the holder on demand.
    for (const PlannedMove &move : moves)
        move.destNode->beginMigrationIn(move.name, move.source);

    installTopology(next, departing, report.toEpoch);

    // Second survey: a concurrent PUT whose epoch check ran before
    // the bump can have landed on an old-ring owner after the first
    // survey. Every node now runs the new ring (late PUTs bounce at
    // commit time), so one more sweep of the old holders catches
    // every straggler deterministically.
    std::set<std::string> planned;
    for (const PlannedMove &move : moves)
        planned.insert(move.name);
    for (const ManagedShard &holder : shards_) {
        for (std::string &name :
             holder.node->service().videoNames()) {
            if (planned.count(name) != 0)
                continue;
            const u32 new_owner = new_ring.ownerOf(name);
            if (new_owner == holder.address.id)
                continue;
            const ManagedShard *dest = findShard(next, new_owner);
            if (dest == nullptr)
                continue;
            dest->node->beginMigrationIn(name, holder.address);
            moves.push_back({std::move(name), holder.address,
                             dest->address, holder.node,
                             dest->node});
        }
    }
    report.plannedMoves = moves.size();

    MigrationEngine engine(config_);
    engine.run(moves, report);

    shards_ = std::move(next);
    epoch_ = report.toEpoch;
    VA_TELEM_COUNT("rebalance.transitions", 1);
    return report;
}

MigrationReport
MembershipManager::addShard(const ManagedShard &next)
{
    std::vector<ManagedShard> members = shards_;
    members.push_back(next);
    return transition(std::move(members), {});
}

MigrationReport
MembershipManager::removeShard(u32 shard_id)
{
    std::vector<ManagedShard> members;
    std::vector<ManagedShard> departing;
    for (const ManagedShard &s : shards_) {
        if (s.address.id == shard_id)
            departing.push_back(s);
        else
            members.push_back(s);
    }
    return transition(std::move(members), departing);
}

RebuildReport
MembershipManager::rebuildShard(const ManagedShard &replacement,
                                const RebuildOriginFn &origin)
{
    RebuildReport report;
    report.toEpoch = epoch_ + 1;

    // Swap the victim's entry for the replacement (same shard id,
    // possibly a new address) and re-announce the ring: same
    // membership, bumped epoch, so every router re-learns the
    // replacement's address through WRONG_EPOCH or refresh.
    for (ManagedShard &s : shards_)
        if (s.address.id == replacement.address.id)
            s = replacement;
    installTopology(shards_, {}, report.toEpoch);
    epoch_ = report.toEpoch;

    const HashRing ring(idsOf(shards_), config_.vnodes);
    const u32 victim = replacement.address.id;

    // Survey: the victim's directory is gone; the union of surviving
    // replica blobs, filtered by ring ownership, is what it held.
    std::vector<std::string> names;
    for (const ManagedShard &s : shards_) {
        if (s.address.id == victim)
            continue;
        for (const std::string &name :
             s.node->service().replicaNames())
            if (ring.ownerOf(name) == victim)
                names.push_back(name);
    }
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()),
                names.end());
    report.names = names.size();

    for (const std::string &name : names) {
        // Precise half: any survivor's replica blob.
        Bytes meta;
        for (const ManagedShard &s : shards_) {
            if (s.address.id == victim)
                continue;
            meta = s.node->service().replicaMeta(name);
            if (!meta.empty())
                break;
        }
        RecordMeta parsed;
        if (meta.empty() ||
            parseRecordMeta(meta, parsed, kRebuildPayloadBound) !=
                ArchiveError::None) {
            report.failed++;
            continue;
        }

        // Approximate half: re-encode the origin under the recorded
        // crypto and policy. recordFromPrepared is bit-deterministic,
        // so equal inputs regenerate the pristine cells exactly.
        Video video;
        Bytes key;
        if (!origin(name, video, key)) {
            report.failed++;
            continue;
        }
        PreparedVideo prepared = prepareVideo(
            video, EncoderConfig{}, EccAssignment::paperTable1());
        ArchivePutOptions options;
        if (parsed.crypto) {
            EncryptionConfig enc;
            enc.mode = parsed.crypto->mode;
            enc.key = key;
            enc.masterIv = parsed.crypto->masterIv;
            enc.keyId = parsed.crypto->keyId;
            enc.encryptMinT =
                parsed.policy ? parsed.policy->encryptMinT : 0;
            options.encryption = enc;
        }
        ArchiveService &service = replacement.node->service();
        if (service.put(name, prepared, options) !=
            ArchiveError::None) {
            report.failed++;
            continue;
        }
        // Re-anchor the precise metadata byte-exact from the replica
        // (policy versions, exact layout — nothing inferred).
        if (service.repairMeta(name, meta) == ArchiveError::None)
            report.metaRepaired++;

        // Parity check: the regenerated streams' pristine cell CRCs
        // must match what the original record anchored at put time.
        RecordMeta rebuilt;
        Bytes rebuilt_meta = service.exportMeta(name);
        if (parseRecordMeta(rebuilt_meta, rebuilt,
                            kRebuildPayloadBound) ==
                ArchiveError::None &&
            rebuilt.streams.size() == parsed.streams.size()) {
            for (std::size_t i = 0; i < parsed.streams.size(); ++i) {
                if (rebuilt.streams[i].cellsCrc ==
                    parsed.streams[i].cellsCrc)
                    report.streamsCrcVerified++;
                else
                    report.streamsCrcMismatched++;
            }
        }
        report.rebuilt++;
        VA_TELEM_COUNT("rebalance.rebuilt_records", 1);
    }
    VA_TELEM_COUNT("rebalance.rebuilds", 1);
    return report;
}

} // namespace videoapp
